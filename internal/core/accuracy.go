package core

import (
	"math"

	"blinkml/internal/compute"
	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/stat"
)

// AccuracyEstimate is the output of the Model Accuracy Estimator (§3).
type AccuracyEstimate struct {
	// Epsilon is the Lemma-2 conservative bound: Pr[v(m_n) ≤ Epsilon] ≥ 1−δ.
	Epsilon float64
	// Diffs are the k sampled model differences v(m_n; θ_N,i).
	Diffs []float64
}

// EstimateAccuracy bounds the difference between the model at theta
// (trained on a sample of size n) and the unknown full model (size N):
// it draws k parameters θ_N,i ~ N(θ_n, α·H⁻¹JH⁻¹) with α = 1/n − 1/N
// (Corollary 1), evaluates v(m_n; θ_N,i) on the holdout, and returns the
// conservative quantile of Lemma 2.
func EstimateAccuracy(spec models.Spec, theta []float64, fac Factor, alpha float64, holdout *dataset.Dataset, k int, delta float64, rng *stat.RNG) AccuracyEstimate {
	if alpha <= 0 {
		// n ≥ N: the "approximate" model is the full model.
		return AccuracyEstimate{Epsilon: 0, Diffs: make([]float64, k)}
	}
	scale := sqrt(alpha)
	d := len(theta)
	vs := make([]float64, k)
	// Draw all normals first — in the exact order the serial loop consumed
	// the RNG — then apply the factor and evaluate the holdout diffs in
	// parallel on the pool (independent per sample).
	zs := make([][]float64, k)
	for i := range zs {
		zs[i] = make([]float64, fac.Rank())
		rng.NormVec(zs[i])
	}
	compute.For(k, 4, func(lo, hi int) {
		w := make([]float64, d)
		thetaN := make([]float64, d)
		for i := lo; i < hi; i++ {
			fac.Apply(zs[i], w)
			for j := 0; j < d; j++ {
				thetaN[j] = theta[j] + scale*w[j]
			}
			vs[i] = models.Diff(spec, theta, thetaN, holdout)
		}
	})
	return AccuracyEstimate{
		Epsilon: stat.ConservativeQuantile(vs, delta),
		Diffs:   vs,
	}
}

// sqrt clamps negative inputs (rounding noise in α) to zero.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
