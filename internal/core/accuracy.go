package core

import (
	"math"

	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/stat"
)

// AccuracyEstimate is the output of the Model Accuracy Estimator (§3).
type AccuracyEstimate struct {
	// Epsilon is the Lemma-2 conservative bound: Pr[v(m_n) ≤ Epsilon] ≥ 1−δ.
	Epsilon float64
	// Diffs are the k sampled model differences v(m_n; θ_N,i).
	Diffs []float64
}

// EstimateAccuracy bounds the difference between the model at theta
// (trained on a sample of size n) and the unknown full model (size N):
// it draws k parameters θ_N,i ~ N(θ_n, α·H⁻¹JH⁻¹) with α = 1/n − 1/N
// (Corollary 1), evaluates v(m_n; θ_N,i) on the holdout, and returns the
// conservative quantile of Lemma 2.
func EstimateAccuracy(spec models.Spec, theta []float64, fac Factor, alpha float64, holdout *dataset.Dataset, k int, delta float64, rng *stat.RNG) AccuracyEstimate {
	if alpha <= 0 {
		// n ≥ N: the "approximate" model is the full model.
		return AccuracyEstimate{Epsilon: 0, Diffs: make([]float64, k)}
	}
	scale := sqrt(alpha)
	d := len(theta)
	vs := make([]float64, k)
	z := make([]float64, fac.Rank())
	w := make([]float64, d)
	thetaN := make([]float64, d)
	for i := 0; i < k; i++ {
		rng.NormVec(z)
		fac.Apply(z, w)
		for j := 0; j < d; j++ {
			thetaN[j] = theta[j] + scale*w[j]
		}
		vs[i] = models.Diff(spec, theta, thetaN, holdout)
	}
	return AccuracyEstimate{
		Epsilon: stat.ConservativeQuantile(vs, delta),
		Diffs:   vs,
	}
}

// sqrt clamps negative inputs (rounding noise in α) to zero.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
