package core

import (
	"bytes"
	"testing"

	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/store"
)

// storeBacked writes a synthetic dataset through CSV into a fresh store
// and returns the handle next to the equivalently parsed in-memory copy
// (both sides see the same post-round-trip float bits).
func storeBacked(t *testing.T, rows int) (*store.Handle, *dataset.Dataset) {
	t.Helper()
	ds, err := datagen.Generate("higgs", datagen.Config{Rows: rows, Dim: 12, Seed: 3})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, ds); err != nil {
		t.Fatalf("write csv: %v", err)
	}
	csv := buf.Bytes()
	mem, err := dataset.ReadCSV(bytes.NewReader(csv), -1, dataset.BinaryClassification)
	if err != nil {
		t.Fatalf("read csv: %v", err)
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	h, err := st.Ingest(bytes.NewReader(csv), store.IngestOptions{
		Format: "csv", Task: dataset.BinaryClassification,
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	return h, mem
}

// TestOutOfCoreTrainingStaysUnderRowBudget is the acceptance test for the
// store path: a dataset strictly larger than the in-memory row budget
// trains under an (ε, δ) contract while the server-side source serves only
// sample + holdout rows — the budget makes any full-pool materialization a
// hard error, and the counter proves the pool was never close to loaded.
func TestOutOfCoreTrainingStaysUnderRowBudget(t *testing.T) {
	const rows = 8000
	h, _ := storeBacked(t, rows)
	const budget = rows / 4 // any single materialization beyond this fails
	h.LimitMaterialize(budget)

	opt := Options{Epsilon: 0.08, Delta: 0.1, Seed: 11, InitialSampleSize: 600}
	res, err := TrainSource(models.LogisticRegression{Reg: 0.001}, h, opt)
	if err != nil {
		t.Fatalf("out-of-core train: %v", err)
	}
	if res.PoolSize >= rows || res.PoolSize <= 0 {
		t.Fatalf("pool size %d", res.PoolSize)
	}
	if got := h.RowsMaterialized(); got >= rows {
		t.Fatalf("materialized %d rows — the whole dataset", got)
	} else if got > int64(budget)+2000 { // samples + holdout + test slack
		t.Fatalf("materialized %d rows, far above the working set", got)
	}

	// The full-training path must trip the budget, not quietly load N rows.
	env, err := NewEnvFromSource(h, opt)
	if err != nil {
		t.Fatalf("env: %v", err)
	}
	if _, err := env.Pool(); err == nil {
		t.Fatal("full pool materialization slipped past the row budget")
	}
}

// TestStoreBackedTrainingMatchesInMemory: the same seed must give the same
// split, the same sample indices, and — float bits passing through the
// binary format untouched — the exact same model.
func TestStoreBackedTrainingMatchesInMemory(t *testing.T) {
	h, mem := storeBacked(t, 4000)
	spec := models.LogisticRegression{Reg: 0.001}
	opt := Options{Epsilon: 0.02, Delta: 0.05, Seed: 17, InitialSampleSize: 300, MinSampleSize: 300}

	fromStore, err := TrainSource(spec, h, opt)
	if err != nil {
		t.Fatalf("store train: %v", err)
	}
	fromMem, err := Train(spec, mem, opt)
	if err != nil {
		t.Fatalf("memory train: %v", err)
	}
	if fromStore.SampleSize != fromMem.SampleSize {
		t.Fatalf("sample sizes differ: %d vs %d", fromStore.SampleSize, fromMem.SampleSize)
	}
	if fromStore.EstimatedEpsilon != fromMem.EstimatedEpsilon {
		t.Fatalf("epsilons differ: %v vs %v", fromStore.EstimatedEpsilon, fromMem.EstimatedEpsilon)
	}
	for i := range fromStore.Theta {
		if fromStore.Theta[i] != fromMem.Theta[i] {
			t.Fatalf("theta[%d]: store %v vs memory %v", i, fromStore.Theta[i], fromMem.Theta[i])
		}
	}
}

// TestStoreBackedSharedSampleNestsAndMatchesMemory covers the tune
// subsystem's reuse contract on the out-of-core path: store-backed
// SharedSample(m) is a prefix of SharedSample(n) for m ≤ n, and both are
// byte-identical to the in-memory env's draws at the same seed.
func TestStoreBackedSharedSampleNestsAndMatchesMemory(t *testing.T) {
	h, mem := storeBacked(t, 3000)
	opt := Options{Epsilon: 0.1, Seed: 23}
	storeEnv, err := NewEnvFromSource(h, opt)
	if err != nil {
		t.Fatalf("store env: %v", err)
	}
	memEnv := NewEnv(mem, opt)

	small, err := storeEnv.SharedSample(150)
	if err != nil {
		t.Fatalf("store shared sample: %v", err)
	}
	big, err := storeEnv.SharedSample(600)
	if err != nil {
		t.Fatalf("store shared sample: %v", err)
	}
	memBig, err := memEnv.SharedSample(600)
	if err != nil {
		t.Fatalf("memory shared sample: %v", err)
	}
	if small.Len() != 150 || big.Len() != 600 {
		t.Fatalf("sizes %d/%d", small.Len(), big.Len())
	}
	dim := mem.Dim
	vec := func(r dataset.Row) []float64 {
		v := make([]float64, dim)
		r.AddTo(v, 1)
		return v
	}
	for i := 0; i < big.Len(); i++ {
		a, b := vec(big.X[i]), vec(memBig.X[i])
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d feature %d: store %v vs memory %v", i, j, a[j], b[j])
			}
		}
		if big.Y[i] != memBig.Y[i] {
			t.Fatalf("row %d label: store %v vs memory %v", i, big.Y[i], memBig.Y[i])
		}
		if i < small.Len() {
			s := vec(small.X[i])
			for j := range s {
				if s[j] != a[j] {
					t.Fatalf("row %d: store samples are not nested", i)
				}
			}
		}
	}
	// Only 600 distinct pool rows (plus the eager holdout) should ever have
	// been read: the 150-sample is a prefix re-read, not a new draw.
	if got := h.RowsMaterialized(); got > 600+150+int64(memEnv.Holdout().Len())+int64(memEnv.Test().Len()) {
		t.Fatalf("materialized %d rows for nested samples", got)
	}
}
