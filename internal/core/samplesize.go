package core

import (
	"math"

	"blinkml/internal/compute"
	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/stat"
)

// Probe records one Sample Size Estimator evaluation at a candidate n.
type Probe struct {
	N int
	// Fraction of the k sampled model pairs with v ≤ ε.
	Fraction float64
	// Satisfied reports whether Fraction reaches the Lemma-2 conservative
	// level.
	Satisfied bool
}

// SampleSizeResult is the outcome of the minimum-sample-size search.
type SampleSizeResult struct {
	N      int
	Probes []Probe
}

// Searcher implements the Sample Size Estimator (§4). It holds the
// pre-drawn, pre-applied factor samples so that probing a candidate n costs
// only scalar scaling — the paper's "sampling by scaling" optimization:
// θ_n,i = θ₀ + √α₁·w₁ᵢ and θ_N,i = θ_n,i + √α₂·w₂ᵢ with α₁ = 1/n₀ − 1/n,
// α₂ = 1/n − 1/N (the two-stage sampling of §4.1 / Figure 4).
//
// For models whose predictions factor through linear scores (ScoreModel),
// the holdout scores of θ₀, w₁ᵢ and w₂ᵢ are precomputed once, making each
// probe O(k·holdout) regardless of the parameter dimension.
type Searcher struct {
	spec    models.Spec
	theta0  []float64
	holdout *dataset.Dataset
	n0, n   int // n = training-pool size N
	eps     float64
	delta   float64
	k       int

	// Generic path: materialized factor samples w₁ᵢ, w₂ᵢ (k x d).
	w1, w2 [][]float64

	// Score fast path (nil when unavailable): per holdout row, the scores
	// of θ₀ and of each wᵢ.
	scoreModel models.ScoreModel
	nScores    int
	base       []float64   // h*s: scores of θ₀
	s1, s2     [][]float64 // k x (h*s): scores of w₁ᵢ, w₂ᵢ
}

// NewSearcher draws the k factor-sample pairs and precomputes holdout
// scores where possible.
func NewSearcher(spec models.Spec, theta0 []float64, fac Factor, n0, bigN int, holdout *dataset.Dataset, eps, delta float64, k int, rng *stat.RNG) *Searcher {
	s := &Searcher{
		spec:    spec,
		theta0:  theta0,
		holdout: holdout,
		n0:      n0,
		n:       bigN,
		eps:     eps,
		delta:   delta,
		k:       k,
	}
	d := len(theta0)
	sm, smOK := spec.(models.ScoreModel)
	// The fast path needs a supervised holdout; PPCA (parameter-space diff)
	// takes the generic path, which for it never touches the holdout.
	useScores := smOK && spec.Task() != dataset.Unsupervised && holdout.Len() > 0

	// Draw every normal vector up front, in the exact order the serial
	// code consumed the RNG (z₁ᵢ, z₂ᵢ alternating); applying the factor
	// and scoring the holdout are then independent per pair, so they fan
	// out on the compute pool without perturbing the random stream.
	zs := make([][]float64, 2*k)
	for i := range zs {
		zs[i] = make([]float64, fac.Rank())
		rng.NormVec(zs[i])
	}
	if useScores {
		s.scoreModel = sm
		s.nScores = sm.NumScores(d, holdout.Dim)
		s.base = holdoutScores(sm, theta0, holdout, s.nScores)
		s.s1 = make([][]float64, k)
		s.s2 = make([][]float64, k)
		compute.For(k, 1, func(lo, hi int) {
			w := make([]float64, d)
			for i := lo; i < hi; i++ {
				fac.Apply(zs[2*i], w)
				s.s1[i] = holdoutScores(sm, w, holdout, s.nScores)
				fac.Apply(zs[2*i+1], w)
				s.s2[i] = holdoutScores(sm, w, holdout, s.nScores)
			}
		})
		return s
	}
	s.w1 = make([][]float64, k)
	s.w2 = make([][]float64, k)
	compute.For(k, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			w := make([]float64, d)
			fac.Apply(zs[2*i], w)
			s.w1[i] = w
			w = make([]float64, d)
			fac.Apply(zs[2*i+1], w)
			s.w2[i] = w
		}
	})
	return s
}

func holdoutScores(sm models.ScoreModel, theta []float64, holdout *dataset.Dataset, ns int) []float64 {
	out := make([]float64, holdout.Len()*ns)
	for r := 0; r < holdout.Len(); r++ {
		sm.Scores(theta, holdout.X[r], out[r*ns:(r+1)*ns])
	}
	return out
}

// Probe evaluates the Equation-8 criterion at candidate sample size n.
func (s *Searcher) Probe(n int) Probe {
	if n >= s.n {
		return Probe{N: n, Fraction: 1, Satisfied: true}
	}
	if n < s.n0 {
		n = s.n0
	}
	a1 := sqrt(Alpha(s.n0, n))
	a2 := sqrt(Alpha(n, s.n))
	vs := make([]float64, s.k)
	// Each sampled pair's diff is independent; probes fan out over the
	// pool (vs entries are written by exactly one chunk, so the probe is
	// deterministic regardless of the degree).
	if s.scoreModel != nil {
		compute.For(s.k, 4, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				vs[i] = s.scoreDiff(s.s1[i], s.s2[i], a1, a2)
			}
		})
	} else {
		d := len(s.theta0)
		compute.For(s.k, 4, func(lo, hi int) {
			thetaN := make([]float64, d)
			thetaNN := make([]float64, d)
			for i := lo; i < hi; i++ {
				for j := 0; j < d; j++ {
					thetaN[j] = s.theta0[j] + a1*s.w1[i][j]
					thetaNN[j] = thetaN[j] + a2*s.w2[i][j]
				}
				vs[i] = models.Diff(s.spec, thetaN, thetaNN, s.holdout)
			}
		})
	}
	return Probe{
		N:         n,
		Fraction:  stat.FractionAtMost(vs, s.eps),
		Satisfied: stat.MeetsLevel(vs, s.eps, s.delta),
	}
}

// scoreDiff computes v(m_n, m_N) for one sampled pair from precomputed
// scores: scores(θ_n,i) = base + a1·s1ᵢ, scores(θ_N,i) = that + a2·s2ᵢ.
func (s *Searcher) scoreDiff(s1, s2 []float64, a1, a2 float64) float64 {
	h := s.holdout.Len()
	ns := s.nScores
	bufN := make([]float64, ns)
	bufNN := make([]float64, ns)
	switch s.spec.Task() {
	case dataset.BinaryClassification, dataset.MultiClassification:
		disagree := 0
		for r := 0; r < h; r++ {
			off := r * ns
			for c := 0; c < ns; c++ {
				bufN[c] = s.base[off+c] + a1*s1[off+c]
				bufNN[c] = bufN[c] + a2*s2[off+c]
			}
			if s.scoreModel.PredictScores(bufN) != s.scoreModel.PredictScores(bufNN) {
				disagree++
			}
		}
		return float64(disagree) / float64(h)
	default: // regression: normalized RMS prediction difference
		var sqDiff, sqBase float64
		for r := 0; r < h; r++ {
			off := r * ns
			for c := 0; c < ns; c++ {
				bufN[c] = s.base[off+c] + a1*s1[off+c]
				bufNN[c] = bufN[c] + a2*s2[off+c]
			}
			pn := s.scoreModel.PredictScores(bufN)
			pnn := s.scoreModel.PredictScores(bufNN)
			d := pn - pnn
			sqDiff += d * d
			sqBase += pn * pn
		}
		base := math.Sqrt(sqBase / float64(h))
		if base < 1e-12 {
			base = 1e-12
		}
		v := math.Sqrt(sqDiff/float64(h)) / base
		if v > 1 {
			v = 1
		}
		return v
	}
}

// Search binary-searches the smallest n in [n₀, N] whose probe satisfies
// the Lemma-2 criterion, relying on the Theorem-2 monotonicity of the
// success probability in n. The search costs O(log₂(N − n₀)) probes.
func (s *Searcher) Search() SampleSizeResult {
	var probes []Probe
	lo, hi := s.n0, s.n
	first := s.Probe(lo)
	probes = append(probes, first)
	if first.Satisfied {
		return SampleSizeResult{N: lo, Probes: probes}
	}
	// Invariant: lo unsatisfied, hi satisfied (n = N always satisfies).
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		p := s.Probe(mid)
		probes = append(probes, p)
		if p.Satisfied {
			hi = mid
		} else {
			lo = mid
		}
	}
	return SampleSizeResult{N: hi, Probes: probes}
}
