package core

import (
	"fmt"
	"math"

	"blinkml/internal/compute"
	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
	"blinkml/internal/models"
)

// Statistics packages the Theorem-1 quantities computed at a trained
// parameter θ_n: a sampling factor for N(0, H⁻¹JH⁻¹) plus, when the method
// materializes them (ClosedForm, InverseGradients, and the small-d
// ObservedFisher path), the explicit H and J matrices for diagnostics.
type Statistics struct {
	Factor Factor
	Method Method
	// Rank of the factor (number of informative directions kept).
	Rank int
	// H and J are populated only when the method computes them densely;
	// nil otherwise (high-dimensional ObservedFisher).
	H, J *linalg.Dense
	// GradsCalls counts invocations of the MCS grads primitive, the cost
	// driver compared in Figure 9b (ObservedFisher: 1; InverseGradients:
	// d+1).
	GradsCalls int
}

// ComputeStatistics computes the sampling statistics for spec at theta
// using the sample the model was trained on (paper §3.4).
func ComputeStatistics(spec models.Spec, sample *dataset.Dataset, theta []float64, opt Options) (*Statistics, error) {
	opt = opt.withDefaults()
	switch opt.Method {
	case ObservedFisher:
		return observedFisher(spec, sample, theta, opt)
	case InverseGradients:
		return inverseGradients(spec, sample, theta, opt)
	case ClosedForm:
		return closedForm(spec, sample, theta, opt)
	default:
		return nil, fmt.Errorf("core: unknown statistics method %v", opt.Method)
	}
}

// observedFisher implements §3.4 Method 3: J is the (centered) second
// moment of the per-example gradients (information-matrix equality), H =
// J + βI, and the factor is built from whichever Gram side is smaller —
// the d x d covariance when d ≤ n, the n x n gradient Gram matrix when
// d > n. Cost: O(min(n²d, nd²)), one grads call.
func observedFisher(spec models.Spec, sample *dataset.Dataset, theta []float64, opt Options) (*Statistics, error) {
	rows := models.PerExampleGradRows(spec, sample, theta)
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("core: cannot compute statistics from an empty sample")
	}
	d := len(theta)
	beta := spec.Beta()

	mean := make([]float64, d)
	for _, r := range rows {
		r.AddTo(mean, 1)
	}
	linalg.Scale(1/float64(n), mean)

	if d <= n {
		return fisherCovarianceSide(rows, mean, d, n, beta, opt)
	}
	return fisherGramSide(rows, mean, d, n, beta, opt)
}

// fisherCovarianceSide eigendecomposes J = (1/n)Q_cᵀQ_c directly (d x d).
// The per-example outer products accumulate in parallel on the compute
// pool: each chunk of rows fills its own d x d partial and the partials
// merge in tree order (deterministic at a fixed degree; at degree 1 the
// single chunk accumulates straight into J, the serial algorithm).
func fisherCovarianceSide(rows []dataset.Row, mean []float64, d, n int, beta float64, opt Options) (*Statistics, error) {
	j := linalg.NewDense(d, d)
	// d x d scratch per chunk: require chunks to be worth their memory.
	chunks := compute.Chunks(n, 64+d/4)
	parts := make([][]float64, chunks)
	compute.ForChunksN(n, chunks, func(chunk, lo, hi int) {
		acc := j
		if chunk > 0 {
			acc = linalg.NewDense(d, d)
		}
		for i := lo; i < hi; i++ {
			addOuterRow(acc, rows[i])
		}
		parts[chunk] = acc.Data
	})
	compute.ReduceVecs(parts) // folds into parts[0] == j.Data
	j.ScaleInPlace(1 / float64(n))
	j.OuterAdd(-1, mean, mean)
	j.Symmetrize()

	eig, err := linalg.NewSymEig(j)
	if err != nil {
		return nil, fmt.Errorf("core: ObservedFisher eigendecomposition failed: %w", err)
	}
	l, rank := factorFromFisherEigs(eig, beta, opt.SVDRelTol)
	h := j.Clone()
	h.AddDiag(beta)
	return &Statistics{
		Factor:     &DenseFactor{L: l},
		Method:     ObservedFisher,
		Rank:       rank,
		H:          h,
		J:          j,
		GradsCalls: 1,
	}, nil
}

// fisherGramSide eigendecomposes the centered Gram matrix G = Q_cQ_cᵀ
// (n x n) and represents L = Q_cᵀ·M lazily (paper §3.4 Eq. 6 + §4.3).
func fisherGramSide(rows []dataset.Row, mean []float64, d, n int, beta float64, opt Options) (*Statistics, error) {
	// a_i = q_i·q̄, m̄ = q̄·q̄ give the centering correction
	// G_ij = q_i·q_j − a_i − a_j + m̄.
	a := make([]float64, n)
	compute.For(n, 128, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = rows[i].Dot(mean)
		}
	})
	mbar := linalg.Dot(mean, mean)
	g := linalg.NewDense(n, n)
	// Only the upper triangle is computed (row i costs n−i dot products),
	// so the row ranges are cost-balanced across the pool; every element
	// is written by exactly one range, making the result trivially
	// deterministic. Each range keeps one densified-row scratch.
	ranges := compute.TriangleRanges(n)
	if dataset.SparsePath(rows) {
		// Sparse path: scatter row i's stored entries into a persistent
		// scratch, take the row of gathers, then undo the scatter — O(nnz)
		// setup per row instead of the dense path's O(d) fill, which is
		// the dominant cost when d ≫ nnz. The scratch holds exactly the
		// values the dense fill would produce (untouched slots are exact
		// zeros), and each entry uses the identical rows[jj].Dot(scratch)
		// expression, so the two paths agree bitwise.
		compute.Run(len(ranges), func(t int) {
			scratch := make([]float64, d)
			for i := ranges[t].Lo; i < ranges[t].Hi; i++ {
				si := rows[i].(*dataset.SparseRow)
				si.AddTo(scratch, 1)
				grow := g.Row(i)
				for jj := i; jj < n; jj++ {
					grow[jj] = rows[jj].Dot(scratch) - a[i] - a[jj] + mbar
				}
				for _, j := range si.Idx {
					scratch[j] = 0
				}
			}
		})
	} else {
		compute.Run(len(ranges), func(t int) {
			scratch := make([]float64, d)
			for i := ranges[t].Lo; i < ranges[t].Hi; i++ {
				linalg.Fill(scratch, 0)
				rows[i].AddTo(scratch, 1)
				grow := g.Row(i)
				for jj := i; jj < n; jj++ {
					grow[jj] = rows[jj].Dot(scratch) - a[i] - a[jj] + mbar
				}
			}
		})
	}
	g.MirrorUpper()
	eig, err := linalg.NewSymEig(g)
	if err != nil {
		return nil, fmt.Errorf("core: ObservedFisher Gram eigendecomposition failed: %w", err)
	}
	// Keep directions with singular value above tolerance; eigenvalues of G
	// are s² = n·μ.
	gMax := math.Max(eig.Values[0], 0)
	cut := opt.SVDRelTol * opt.SVDRelTol * gMax
	rank := 0
	for rank < n && eig.Values[rank] > cut && eig.Values[rank] > 0 {
		rank++
	}
	m := linalg.NewDense(n, rank)
	sqrtN := math.Sqrt(float64(n))
	for jj := 0; jj < rank; jj++ {
		mu := eig.Values[jj] / float64(n)
		c := 1 / (sqrtN * (mu + beta))
		if beta == 0 && mu <= 0 {
			c = 0
		}
		for i := 0; i < n; i++ {
			m.Set(i, jj, c*eig.Vectors.At(i, jj))
		}
	}
	return &Statistics{
		Factor:     &GradFactor{rows: rows, mean: mean, m: m, dim: d},
		Method:     ObservedFisher,
		Rank:       rank,
		GradsCalls: 1,
	}, nil
}

// factorFromFisherEigs builds L = V·diag(√μ/(μ+β)) from the eigensystem of
// J, dropping non-informative directions.
func factorFromFisherEigs(eig *linalg.SymEig, beta, relTol float64) (*linalg.Dense, int) {
	d := len(eig.Values)
	muMax := math.Max(eig.Values[0], 0)
	cut := relTol * relTol * muMax
	rank := 0
	for rank < d && eig.Values[rank] > cut && eig.Values[rank] > 0 {
		rank++
	}
	l := linalg.NewDense(d, rank)
	for j := 0; j < rank; j++ {
		mu := eig.Values[j]
		scale := math.Sqrt(mu) / (mu + beta)
		for i := 0; i < d; i++ {
			l.Set(i, j, scale*eig.Vectors.At(i, j))
		}
	}
	return l, rank
}

// addOuterRow accumulates row·rowᵀ into m, exploiting sparsity.
func addOuterRow(m *linalg.Dense, row dataset.Row) {
	switch r := row.(type) {
	case *dataset.SparseRow:
		linalg.SpOuterAdd(m, 1, r.Idx, r.Val)
	case dataset.DenseRow:
		m.OuterAdd(1, r, r)
	default:
		dense := make([]float64, row.Dim())
		row.AddTo(dense, 1)
		m.OuterAdd(1, dense, dense)
	}
}

// closedForm implements §3.4 Method 1: the model supplies H(θ) analytically
// and J = H − βI (the Jacobian of g − r).
func closedForm(spec models.Spec, sample *dataset.Dataset, theta []float64, opt Options) (*Statistics, error) {
	hs, ok := spec.(models.Hessianer)
	if !ok {
		return nil, ErrNoHessian
	}
	h := hs.Hessian(theta, sample)
	return statsFromHessian(h, spec.Beta(), ClosedForm, 0, opt)
}

// inverseGradients implements §3.4 Method 2: H ≈ R·P⁻¹ with P = ϵI, i.e.
// column j of H is (g(θ+ϵe_j) − g(θ))/ϵ. Needs d+1 grads calls — the cost
// compared against ObservedFisher in Figure 9b.
func inverseGradients(spec models.Spec, sample *dataset.Dataset, theta []float64, opt Options) (*Statistics, error) {
	d := len(theta)
	g0 := models.BatchGradient(spec, sample, theta)
	h := linalg.NewDense(d, d)
	pert := linalg.CopyVec(theta)
	for j := 0; j < d; j++ {
		pert[j] = theta[j] + opt.FDStep
		gj := models.BatchGradient(spec, sample, pert)
		pert[j] = theta[j]
		for i := 0; i < d; i++ {
			h.Set(i, j, (gj[i]-g0[i])/opt.FDStep)
		}
	}
	h.Symmetrize()
	return statsFromHessian(h, spec.Beta(), InverseGradients, d+1, opt)
}

// statsFromHessian turns an explicit H into a factor for H⁻¹JH⁻¹ with
// J = H − βI, via M = H⁻¹JH⁻¹ and a symmetric eigendecomposition
// (negative eigenvalues from sampling noise are clamped to zero — the
// footnote-2 treatment of not-fully-converged optima).
func statsFromHessian(h *linalg.Dense, beta float64, method Method, gradsCalls int, opt Options) (*Statistics, error) {
	d := h.Rows
	j := h.Clone()
	j.AddDiag(-beta)
	lu, err := linalg.NewLU(h)
	if err != nil {
		// H is singular (e.g. collinear features with β = 0): regularize
		// minimally and retry so the estimator can still answer.
		hj := h.Clone()
		hj.AddDiag(1e-8 * (1 + h.FrobeniusNorm()/float64(d)))
		lu, err = linalg.NewLU(hj)
		if err != nil {
			return nil, fmt.Errorf("core: Hessian is singular: %w", err)
		}
	}
	hinvJ := lu.SolveMat(j)      // H⁻¹J
	m := lu.SolveMatTrans(hinvJ) // H⁻¹(H⁻¹J)ᵀ = H⁻¹JH⁻¹ (J symmetric), no dxd transpose copy
	m.Symmetrize()
	eig, err := linalg.NewSymEig(m)
	if err != nil {
		return nil, fmt.Errorf("core: covariance eigendecomposition failed: %w", err)
	}
	lamMax := math.Max(eig.Values[0], 0)
	cut := opt.SVDRelTol * opt.SVDRelTol * lamMax
	rank := 0
	for rank < d && eig.Values[rank] > cut && eig.Values[rank] > 0 {
		rank++
	}
	l := linalg.NewDense(d, rank)
	for jj := 0; jj < rank; jj++ {
		s := math.Sqrt(eig.Values[jj])
		for i := 0; i < d; i++ {
			l.Set(i, jj, s*eig.Vectors.At(i, jj))
		}
	}
	return &Statistics{
		Factor:     &DenseFactor{L: l},
		Method:     method,
		Rank:       rank,
		H:          h,
		J:          j,
		GradsCalls: gradsCalls,
	}, nil
}

// Alpha returns the Theorem-1 covariance scale α = 1/n − 1/N, clamped at
// zero for n ≥ N.
func Alpha(n, N int) float64 {
	if n >= N {
		return 0
	}
	return 1/float64(n) - 1/float64(N)
}
