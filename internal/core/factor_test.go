package core

import (
	"math"
	"testing"

	"blinkml/internal/datagen"
	"blinkml/internal/linalg"
	"blinkml/internal/models"
	"blinkml/internal/stat"
)

func TestInflateScalesApplies(t *testing.T) {
	base := &DenseFactor{L: linalg.Identity(3)}
	inflated := Inflate(base, 0.5)
	z := []float64{1, 2, 3}
	out := make([]float64, 3)
	inflated.Apply(z, out)
	for i := range z {
		if math.Abs(out[i]-1.5*z[i]) > 1e-12 {
			t.Fatalf("inflated apply %v want %v", out[i], 1.5*z[i])
		}
	}
	if inflated.Dim() != 3 || inflated.Rank() != 3 {
		t.Fatal("inflated factor dims wrong")
	}
}

func TestInflateNoopForZero(t *testing.T) {
	base := &DenseFactor{L: linalg.Identity(2)}
	if Inflate(base, 0) != Factor(base) {
		t.Fatal("zero inflation must return the factor unchanged")
	}
	if Inflate(base, -1) != Factor(base) {
		t.Fatal("negative inflation must return the factor unchanged")
	}
}

// VarianceInflation must make the accuracy estimate more conservative
// (larger ε₀) and the chosen sample size no smaller.
func TestVarianceInflationIsConservative(t *testing.T) {
	ds := datagen.Higgs(datagen.Config{Rows: 12000, Dim: 8, Seed: 31})
	spec := models.LogisticRegression{Reg: 0.01}
	base := Options{Epsilon: 0.03, Seed: 32, InitialSampleSize: 400}
	plain, err := Train(spec, ds, base)
	if err != nil {
		t.Fatal(err)
	}
	inflatedOpt := base
	inflatedOpt.VarianceInflation = 1.0
	conservative, err := Train(spec, ds, inflatedOpt)
	if err != nil {
		t.Fatal(err)
	}
	if conservative.Diag.InitialEpsilon < plain.Diag.InitialEpsilon {
		t.Fatalf("inflation made ε₀ smaller: %v < %v",
			conservative.Diag.InitialEpsilon, plain.Diag.InitialEpsilon)
	}
	if conservative.SampleSize < plain.SampleSize {
		t.Fatalf("inflation shrank the chosen sample: %d < %d",
			conservative.SampleSize, plain.SampleSize)
	}
}

// Sampling through a factor must reproduce the factor covariance
// empirically.
func TestSampleMatchesCovariance(t *testing.T) {
	l := linalg.NewDenseFrom(2, 2, []float64{2, 0, 1, 1})
	f := &DenseFactor{L: l}
	rng := stat.NewRNG(33)
	mean := []float64{10, -5}
	n := 40000
	var s0, s1, ss0, ss1, cross float64
	dst := make([]float64, 2)
	for i := 0; i < n; i++ {
		Sample(f, rng, mean, 1, dst)
		d0, d1 := dst[0]-mean[0], dst[1]-mean[1]
		s0 += d0
		s1 += d1
		ss0 += d0 * d0
		ss1 += d1 * d1
		cross += d0 * d1
	}
	inv := 1 / float64(n)
	// Cov = L·Lᵀ = [[4, 2], [2, 2]].
	if math.Abs(s0*inv) > 0.05 || math.Abs(s1*inv) > 0.05 {
		t.Fatalf("sample mean drifted: %v %v", s0*inv, s1*inv)
	}
	if math.Abs(ss0*inv-4) > 0.15 || math.Abs(ss1*inv-2) > 0.1 || math.Abs(cross*inv-2) > 0.1 {
		t.Fatalf("sample covariance [%v %v; %v] want [4 2; 2]", ss0*inv, cross*inv, ss1*inv)
	}
}

// Training twice with the same options must be bit-for-bit deterministic.
func TestTrainDeterministic(t *testing.T) {
	ds := datagen.Criteo(datagen.Config{Rows: 8000, Dim: 200, Seed: 34})
	spec := models.LogisticRegression{Reg: 0.001}
	opt := Options{Epsilon: 0.05, Seed: 35, InitialSampleSize: 300, K: 40}
	a, err := Train(spec, ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(spec, ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.SampleSize != b.SampleSize {
		t.Fatalf("sample sizes differ: %d vs %d", a.SampleSize, b.SampleSize)
	}
	for i := range a.Theta {
		if a.Theta[i] != b.Theta[i] {
			t.Fatalf("theta[%d] differs", i)
		}
	}
}
