package core

import (
	"testing"

	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
	"blinkml/internal/models"
	"blinkml/internal/stat"
)

// PPCA goes through the generic (non-score) Sample Size Estimator path and
// measures v in parameter space; the chosen n must still satisfy its probe
// and the probe at N must be trivially satisfied.
func TestSearcherPPCAPath(t *testing.T) {
	ds := datagen.MNIST(datagen.Config{Rows: 5000, Dim: 25, Seed: 41})
	spec := models.NewPPCA(3)
	env := NewEnv(ds, Options{Epsilon: 0.01, Seed: 42})
	n0 := 300
	rng := stat.NewRNG(43)
	sample := poolOf(t, env).Subset(dataset.SampleWithoutReplacement(rng, env.PoolLen(), n0))
	theta, _, err := spec.TrainCustom(sample)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeStatistics(spec, sample, theta, Options{Epsilon: 0.01}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(spec, theta, st.Factor, n0, env.PoolLen(), env.Holdout(), 0.01, 0.05, 50, rng)
	if s.scoreModel != nil {
		t.Fatal("PPCA must not take the score fast path")
	}
	res := s.Search()
	if !s.Probe(res.N).Satisfied {
		t.Fatalf("chosen n=%d fails its own probe", res.N)
	}
}

// A requested ε larger than any possible v must return the initial model
// immediately.
func TestTrainTrivialEpsilon(t *testing.T) {
	ds := datagen.Higgs(datagen.Config{Rows: 5000, Dim: 5, Seed: 44})
	res, err := Train(models.LogisticRegression{Reg: 0.01}, ds, Options{
		Epsilon: 1.0, Seed: 45, InitialSampleSize: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UsedInitialModel || res.SampleSize != 200 {
		t.Fatalf("ε=1 should be satisfied by n₀: %+v", res)
	}
}

// Unsupervised datasets have no labels; the coordinator must work with an
// empty holdout diff (PPCA diffs on parameters).
func TestTrainUnsupervisedEmptyLabels(t *testing.T) {
	ds := datagen.MNIST(datagen.Config{Rows: 3000, Dim: 16, Seed: 46})
	unlabeled := &dataset.Dataset{X: ds.X, Dim: ds.Dim, Task: dataset.Unsupervised, Name: "unlabeled"}
	res, err := Train(models.NewPPCA(2), unlabeled, Options{Epsilon: 0.05, Seed: 47, InitialSampleSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Theta) != 16*2 {
		t.Fatalf("theta dim %d", len(res.Theta))
	}
}

// EstimateAccuracy with a zero-rank factor (a degenerate, constant
// gradient field) must not panic and must report zero deviation.
func TestEstimateAccuracyZeroRankFactor(t *testing.T) {
	ds := datagen.Higgs(datagen.Config{Rows: 500, Dim: 3, Seed: 48})
	spec := models.LogisticRegression{Reg: 0.01}
	f := &DenseFactor{L: linalg.NewDense(3, 0)} // rank 0
	est := EstimateAccuracy(spec, []float64{1, 2, 3}, f, 0.01, ds, 20, 0.05, stat.NewRNG(49))
	if est.Epsilon != 0 {
		t.Fatalf("zero-rank factor should give ε=0, got %v", est.Epsilon)
	}
}
