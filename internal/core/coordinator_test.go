package core

import (
	"testing"

	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
)

func defaultOptim() optimize.Options { return optimize.Options{} }

func TestTrainValidatesOptions(t *testing.T) {
	ds := datagen.Higgs(datagen.Config{Rows: 200, Dim: 4, Seed: 1})
	if _, err := Train(models.LogisticRegression{Reg: 0.01}, ds, Options{Epsilon: 0}); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
	if _, err := Train(models.LogisticRegression{Reg: 0.01}, ds, Options{Epsilon: 1.5}); err == nil {
		t.Fatal("epsilon > 1 accepted")
	}
	if _, err := Train(models.LogisticRegression{Reg: 0.01}, ds, Options{Epsilon: 0.1, Delta: 2}); err == nil {
		t.Fatal("delta 2 accepted")
	}
}

func TestTrainEmptyPool(t *testing.T) {
	ds := &dataset.Dataset{Dim: 2, Task: dataset.BinaryClassification}
	ds.X = append(ds.X, dataset.DenseRow{1, 2}, dataset.DenseRow{3, 4})
	ds.Y = append(ds.Y, 0, 1)
	// With 2 rows, the split leaves an empty-ish pool; expect a clean error
	// or a tiny-model result, never a panic.
	_, err := Train(models.LogisticRegression{Reg: 0.1}, ds, Options{Epsilon: 0.1, Seed: 1})
	_ = err // either outcome is acceptable; the test asserts no panic
}

func TestTrainLooseContractUsesInitialModel(t *testing.T) {
	ds := datagen.Higgs(datagen.Config{Rows: 12000, Dim: 6, Seed: 2})
	res, err := Train(models.LogisticRegression{Reg: 0.01}, ds, Options{
		Epsilon: 0.5, Seed: 3, InitialSampleSize: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UsedInitialModel {
		t.Fatalf("ε=0.5 should be satisfied by the initial model (ε₀=%v)", res.Diag.InitialEpsilon)
	}
	if res.SampleSize != 500 {
		t.Fatalf("sample size %d want 500", res.SampleSize)
	}
	if res.EstimatedEpsilon > 0.5 {
		t.Fatalf("estimated ε %v exceeds request", res.EstimatedEpsilon)
	}
}

func TestTrainTightContractTrainsFinalModel(t *testing.T) {
	ds := datagen.Higgs(datagen.Config{Rows: 20000, Dim: 10, Seed: 4})
	res, err := Train(models.LogisticRegression{Reg: 0.01}, ds, Options{
		Epsilon: 0.02, Seed: 5, InitialSampleSize: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedInitialModel {
		t.Skip("initial model unexpectedly met ε=0.02; nothing to assert")
	}
	if res.SampleSize <= 300 {
		t.Fatalf("final sample %d should exceed n₀", res.SampleSize)
	}
	if len(res.Diag.Probes) == 0 {
		t.Fatal("sample size search left no probes")
	}
	if res.Diag.FinalTrain <= 0 {
		t.Fatal("final training time not recorded")
	}
}

// The headline guarantee: the returned model differs from a truly trained
// full model by at most ε on the holdout (checked on a deterministic seed;
// the statistical sweep lives in the experiments package).
func TestTrainMeetsContractAgainstFullModel(t *testing.T) {
	ds := datagen.Higgs(datagen.Config{Rows: 20000, Dim: 8, Seed: 6})
	spec := models.LogisticRegression{Reg: 0.01}
	opt := Options{Epsilon: 0.05, Seed: 7, InitialSampleSize: 400}
	env := NewEnv(ds, opt)
	res, err := env.TrainApprox(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	full, err := env.TrainFull(spec, defaultOptim())
	if err != nil {
		t.Fatal(err)
	}
	v := models.Diff(spec, res.Theta, full.Theta, env.Holdout())
	if v > opt.Epsilon {
		t.Fatalf("actual difference %v exceeds contract ε=%v (n=%d)", v, opt.Epsilon, res.SampleSize)
	}
}

func TestTrainPPCAEndToEnd(t *testing.T) {
	ds := datagen.MNIST(datagen.Config{Rows: 4000, Dim: 36, Seed: 8})
	spec := models.NewPPCA(4)
	res, err := Train(spec, ds, Options{Epsilon: 0.05, Seed: 9, InitialSampleSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Theta) != 36*4 {
		t.Fatalf("theta dim %d", len(res.Theta))
	}
	env := NewEnv(ds, Options{Epsilon: 0.05, Seed: 9})
	full, err := env.TrainFull(models.NewPPCA(4), defaultOptim())
	if err != nil {
		t.Fatal(err)
	}
	if v := models.Diff(spec, res.Theta, full.Theta, env.Holdout()); v > 0.05 {
		t.Fatalf("PPCA actual diff %v exceeds ε", v)
	}
}

func TestTrainSmallPoolCollapsesToFullModel(t *testing.T) {
	ds := datagen.Higgs(datagen.Config{Rows: 600, Dim: 4, Seed: 10})
	res, err := Train(models.LogisticRegression{Reg: 0.01}, ds, Options{
		Epsilon: 0.01, Seed: 11, InitialSampleSize: 5000, // n₀ > N
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UsedInitialModel || res.EstimatedEpsilon != 0 {
		t.Fatalf("n₀ ≥ N should return the exact model: %+v", res)
	}
	if res.SampleSize != res.PoolSize {
		t.Fatalf("sample %d != pool %d", res.SampleSize, res.PoolSize)
	}
}

func TestTrainSparseHighDimensional(t *testing.T) {
	// d (800) > n₀ (300): exercises the Gram-side ObservedFisher path and
	// the lazy GradFactor end to end.
	ds := datagen.Criteo(datagen.Config{Rows: 9000, Dim: 800, Seed: 12})
	res, err := Train(models.LogisticRegression{Reg: 0.001}, ds, Options{
		Epsilon: 0.1, Seed: 13, InitialSampleSize: 300, K: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diag.Rank > 300 {
		t.Fatalf("rank %d exceeds sample size", res.Diag.Rank)
	}
	if res.SampleSize < 300 {
		t.Fatalf("sample size %d below n₀", res.SampleSize)
	}
}

func TestDiagnosticsTotal(t *testing.T) {
	d := Diagnostics{InitialTrain: 1, Statistics: 2, SampleSearch: 3, FinalTrain: 4}
	if d.Total() != 10 {
		t.Fatalf("Total=%v", d.Total())
	}
}

func TestMethodString(t *testing.T) {
	if ObservedFisher.String() != "ObservedFisher" ||
		InverseGradients.String() != "InverseGradients" ||
		ClosedForm.String() != "ClosedForm" {
		t.Fatal("Method.String broken")
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method must still stringify")
	}
}

func TestTrainWithWarmStart(t *testing.T) {
	ds := datagen.Higgs(datagen.Config{Rows: 15000, Dim: 8, Seed: 14})
	res, err := Train(models.LogisticRegression{Reg: 0.01}, ds, Options{
		Epsilon: 0.02, Seed: 15, InitialSampleSize: 300, WarmStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Theta) != 8 {
		t.Fatalf("theta dim %d", len(res.Theta))
	}
}

func TestTrainAllMethodsEndToEnd(t *testing.T) {
	ds := datagen.Higgs(datagen.Config{Rows: 8000, Dim: 6, Seed: 16})
	for _, m := range []Method{ObservedFisher, InverseGradients, ClosedForm} {
		res, err := Train(models.LogisticRegression{Reg: 0.01}, ds, Options{
			Epsilon: 0.05, Seed: 17, InitialSampleSize: 400, Method: m,
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Diag.Method != m {
			t.Fatalf("diag method %v want %v", res.Diag.Method, m)
		}
	}
}
