package core

import (
	"testing"

	"blinkml/internal/compute"
	"blinkml/internal/datagen"
	"blinkml/internal/models"
)

// The determinism contract of the compute layer, end to end: at a fixed
// parallelism degree, a full BlinkML run (training, statistics, accuracy
// estimation, sample-size search, final training) is bit-identical across
// repetitions, including at a degree > 1 where every kernel actually
// chunks.
func TestCoordinatorDeterministicAtFixedDegree(t *testing.T) {
	prev := compute.Parallelism()
	compute.SetParallelism(4)
	defer compute.SetParallelism(prev)

	run := func() *Result {
		t.Helper()
		ds := datagen.Criteo(datagen.Config{Rows: 8000, Dim: 120, Seed: 21})
		res, err := Train(models.LogisticRegression{Reg: 0.001}, ds, Options{
			Epsilon: 0.01, Seed: 22, InitialSampleSize: 400, K: 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	for rep := 0; rep < 2; rep++ {
		again := run()
		if again.SampleSize != first.SampleSize {
			t.Fatalf("rep %d: sample size %d vs %d", rep, again.SampleSize, first.SampleSize)
		}
		for j := range first.Theta {
			if again.Theta[j] != first.Theta[j] {
				t.Fatalf("rep %d: theta[%d] = %v vs %v (not bit-identical)", rep, j, again.Theta[j], first.Theta[j])
			}
		}
	}
}

// Statistics must also be deterministic on the covariance side (dense
// chunked reduction path) at degree > 1.
func TestStatisticsDeterministicAtFixedDegree(t *testing.T) {
	prev := compute.Parallelism()
	compute.SetParallelism(3)
	defer compute.SetParallelism(prev)

	ds := datagen.Higgs(datagen.Config{Rows: 1200, Dim: 30, Seed: 23})
	spec := models.LogisticRegression{Reg: 0.01}
	theta := make([]float64, 30)
	for i := range theta {
		theta[i] = 0.1 * float64(i%5)
	}
	first, err := ComputeStatistics(spec, ds, theta, Options{Epsilon: 0.05}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	fl, ok := first.Factor.(*DenseFactor)
	if !ok {
		t.Fatalf("expected dense factor, got %T", first.Factor)
	}
	for rep := 0; rep < 2; rep++ {
		again, err := ComputeStatistics(spec, ds, theta, Options{Epsilon: 0.05}.withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		al := again.Factor.(*DenseFactor)
		if len(al.L.Data) != len(fl.L.Data) {
			t.Fatalf("rep %d: factor shape changed", rep)
		}
		for i := range fl.L.Data {
			if al.L.Data[i] != fl.L.Data[i] {
				t.Fatalf("rep %d: L[%d] differs (not bit-identical)", rep, i)
			}
		}
	}
}
