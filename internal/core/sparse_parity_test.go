package core

import (
	"fmt"
	"math"
	"testing"

	"blinkml/internal/compute"
	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/stat"
)

// sparseFixture builds a deterministic low-density dataset (nnz stored
// entries per row over dim) with labels fitting the task. The returned
// dataset keeps its sparse CSR representation — density is well below the
// auto-dense threshold.
func sparseFixture(t *testing.T, task dataset.Task, rows, dim, nnz, classes int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := stat.NewRNG(seed)
	indices := make([][]int32, rows)
	values := make([][]float64, rows)
	var y []float64
	if task != dataset.Unsupervised {
		y = make([]float64, rows)
	}
	for i := range indices {
		seen := map[int32]bool{0: true} // always include a bias feature
		for len(seen) < nnz {
			seen[int32(1+rng.Intn(dim-1))] = true
		}
		idx := make([]int32, 0, nnz)
		for j := int32(0); int(j) < dim && len(idx) < nnz; j++ {
			if seen[j] {
				idx = append(idx, j)
			}
		}
		val := make([]float64, len(idx))
		var score float64
		for k := range val {
			val[k] = rng.Norm()
			score += val[k]
		}
		indices[i] = idx
		values[i] = val
		switch task {
		case dataset.Regression:
			y[i] = math.Abs(math.Round(score)) // also serves as a Poisson count
		case dataset.BinaryClassification:
			if score > 0 {
				y[i] = 1
			}
		case dataset.MultiClassification:
			c := int(math.Abs(score)) % classes
			y[i] = float64(c)
		}
	}
	ds, err := dataset.FromSparse(task, dim, indices, values, y, classes)
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	if dataset.SparsePath(ds.X) != true {
		t.Fatalf("fixture density %v did not stay on the sparse path", ds.Density())
	}
	return ds
}

// densified returns a dense-row copy of ds without touching the original.
func densified(ds *dataset.Dataset) *dataset.Dataset {
	out := &dataset.Dataset{Dim: ds.Dim, Task: ds.Task, NumClasses: ds.NumClasses, Name: ds.Name, Y: ds.Y}
	out.X = make([]dataset.Row, len(ds.X))
	for i, r := range ds.X {
		buf := make(dataset.DenseRow, ds.Dim)
		r.AddTo(buf, 1)
		out.X[i] = buf
	}
	return out
}

// TestSparseDensePathsBitIdentical is the sparse-path determinism contract:
// for every model class, training on the sparse representation and on its
// densified copy — same seed, same options — must produce bit-identical
// parameters, the same chosen sample size, and the same ε estimate, at
// degree 1 (exact serial order) and at a fixed degree > 1 (chunked
// kernels). This is what makes the per-dataset density switch purely a
// performance decision.
func TestSparseDensePathsBitIdentical(t *testing.T) {
	cases := []struct {
		name    string
		spec    models.Spec
		task    dataset.Task
		classes int
	}{
		{"linear", models.LinearRegression{Reg: 0.001}, dataset.Regression, 0},
		{"logistic", models.LogisticRegression{Reg: 0.001}, dataset.BinaryClassification, 0},
		{"maxent", models.MaxEntropy{Classes: 3, Reg: 0.001}, dataset.MultiClassification, 3},
		{"poisson", models.PoissonRegression{Reg: 0.001}, dataset.Regression, 0},
		{"ppca", models.NewPPCA(3), dataset.Unsupervised, 0},
	}
	for _, degree := range []int{1, 3} {
		for _, c := range cases {
			t.Run(fmt.Sprintf("%s/degree-%d", c.name, degree), func(t *testing.T) {
				prev := compute.Parallelism()
				compute.SetParallelism(degree)
				defer compute.SetParallelism(prev)

				sp := sparseFixture(t, c.task, 1500, 80, 6, c.classes, 7)
				de := densified(sp)
				opt := Options{Epsilon: 0.05, Seed: 11, InitialSampleSize: 200, K: 30}
				rs, err := Train(c.spec, sp, opt)
				if err != nil {
					t.Fatalf("sparse train: %v", err)
				}
				rd, err := Train(c.spec, de, opt)
				if err != nil {
					t.Fatalf("dense train: %v", err)
				}
				if rs.SampleSize != rd.SampleSize {
					t.Fatalf("sample size %d (sparse) vs %d (dense)", rs.SampleSize, rd.SampleSize)
				}
				if math.Float64bits(rs.EstimatedEpsilon) != math.Float64bits(rd.EstimatedEpsilon) {
					t.Fatalf("epsilon %v (sparse) vs %v (dense)", rs.EstimatedEpsilon, rd.EstimatedEpsilon)
				}
				if len(rs.Theta) != len(rd.Theta) {
					t.Fatalf("theta dim %d vs %d", len(rs.Theta), len(rd.Theta))
				}
				for j := range rs.Theta {
					if math.Float64bits(rs.Theta[j]) != math.Float64bits(rd.Theta[j]) {
						t.Fatalf("theta[%d] = %x (sparse) vs %x (dense): not bit-identical",
							j, math.Float64bits(rs.Theta[j]), math.Float64bits(rd.Theta[j]))
					}
				}
			})
		}
	}
}

// TestSparseGramConcurrent drives the sparse Fisher Gram (the scratch
// scatter/gather path) at degree 4 from concurrent statistics runs — the
// -race exercise for the per-chunk scratch vectors — and checks repeats are
// bit-identical.
func TestSparseGramConcurrent(t *testing.T) {
	prev := compute.Parallelism()
	compute.SetParallelism(4)
	defer compute.SetParallelism(prev)

	// dim > rows forces the Gram side; low density keeps the sparse path.
	ds := sparseFixture(t, dataset.BinaryClassification, 150, 400, 8, 0, 5)
	spec := models.LogisticRegression{Reg: 0.01}
	theta := make([]float64, ds.Dim)
	for i := range theta {
		theta[i] = 0.05 * float64(i%7)
	}
	opt := Options{Epsilon: 0.05}.withDefaults()
	first, err := ComputeStatistics(spec, ds, theta, opt)
	if err != nil {
		t.Fatal(err)
	}
	fg, ok := first.Factor.(*GradFactor)
	if !ok {
		t.Fatalf("expected the Gram-side factor, got %T", first.Factor)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func() {
			for rep := 0; rep < 3; rep++ {
				again, err := ComputeStatistics(spec, ds, theta, opt)
				if err != nil {
					done <- err
					return
				}
				ag := again.Factor.(*GradFactor)
				if len(ag.m.Data) != len(fg.m.Data) {
					done <- fmt.Errorf("factor shape changed")
					return
				}
				for i := range fg.m.Data {
					if math.Float64bits(ag.m.Data[i]) != math.Float64bits(fg.m.Data[i]) {
						done <- fmt.Errorf("M[%d] differs across concurrent repeats", i)
						return
					}
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
