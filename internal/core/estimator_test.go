package core

import (
	"math"
	"testing"

	"blinkml/internal/datagen"
	"blinkml/internal/models"
	"blinkml/internal/stat"
)

// hideScores wraps a Spec so the dynamic type no longer satisfies
// models.ScoreModel, forcing the generic Sample Size Estimator path.
type hideScores struct{ models.Spec }

func TestEstimateAccuracyZeroAlpha(t *testing.T) {
	ds := datagen.Higgs(datagen.Config{Rows: 400, Dim: 5, Seed: 1})
	spec := models.LogisticRegression{Reg: 0.01}
	theta := trainOn(t, spec, ds)
	st, err := ComputeStatistics(spec, ds, theta, Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateAccuracy(spec, theta, st.Factor, 0, ds, 20, 0.05, stat.NewRNG(1))
	if est.Epsilon != 0 {
		t.Fatalf("alpha=0 must give epsilon 0, got %v", est.Epsilon)
	}
}

// The accuracy bound should shrink as the (hypothetical) training sample
// grows: ε(n=500) ≥ ε(n=5000).
func TestEstimateAccuracyShrinksWithSampleSize(t *testing.T) {
	pool := datagen.Higgs(datagen.Config{Rows: 20000, Dim: 6, Seed: 2})
	env := NewEnv(pool, Options{Epsilon: 0.1, Seed: 3})
	spec := models.LogisticRegression{Reg: 0.01}
	sample, err := env.TrainOnSample(spec, 800, 7, defaultOptim())
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeStatistics(spec, poolOf(t, env), sample.Theta, Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	N := env.PoolLen()
	epsSmall := EstimateAccuracy(spec, sample.Theta, st.Factor, Alpha(500, N), env.Holdout(), 100, 0.05, stat.NewRNG(4)).Epsilon
	epsBig := EstimateAccuracy(spec, sample.Theta, st.Factor, Alpha(5000, N), env.Holdout(), 100, 0.05, stat.NewRNG(4)).Epsilon
	if epsBig > epsSmall {
		t.Fatalf("bound must shrink with n: ε(500)=%v < ε(5000)=%v", epsSmall, epsBig)
	}
}

// End-to-end guarantee check (Lemma 2 + Corollary 1): the estimated bound
// must cover the actual difference from a truly trained full model in the
// vast majority of seeded trials.
func TestAccuracyGuaranteeAgainstTrueFullModel(t *testing.T) {
	if testing.Short() {
		t.Skip("guarantee validation skipped in -short mode")
	}
	pool := datagen.Higgs(datagen.Config{Rows: 15000, Dim: 8, Seed: 5})
	spec := models.LogisticRegression{Reg: 0.01}
	env := NewEnv(pool, Options{Epsilon: 0.1, Seed: 6})
	n := 700
	violations, trials := 0, 12
	var fullTheta []float64
	for seed := int64(0); seed < int64(trials); seed++ {
		approx, err := env.TrainOnSample(spec, n, 100+seed, defaultOptim())
		if err != nil {
			t.Fatal(err)
		}
		sampleStats, err := ComputeStatistics(spec, poolOf(t, env), approx.Theta, Options{Epsilon: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		est := EstimateAccuracy(spec, approx.Theta, sampleStats.Factor, Alpha(n, env.PoolLen()), env.Holdout(), 150, 0.05, stat.NewRNG(200+seed))
		// The first trial exercises the full production path (ValidateGuarantee
		// trains the ground-truth model); later trials amortize that one full
		// training through CheckGuarantee — the same comparison the runtime
		// auditor runs, so test and production cannot drift.
		var rep GuaranteeReport
		if fullTheta == nil {
			rep, err = ValidateGuarantee(env, spec, &Result{Theta: approx.Theta, EstimatedEpsilon: est.Epsilon}, defaultOptim())
			if err != nil {
				t.Fatal(err)
			}
			fullTheta = rep.FullTheta
		} else {
			rep = CheckGuarantee(spec, approx.Theta, fullTheta, est.Epsilon, env.Holdout())
		}
		if !rep.Satisfied {
			violations++
		}
	}
	// δ=0.05 tolerates ~5% violations; allow up to 2/12 for Monte-Carlo
	// noise in this small trial count.
	if violations > 2 {
		t.Fatalf("guarantee violated in %d/%d trials", violations, trials)
	}
}

// Theorem 2: the probability of satisfying the bound is increasing in n, so
// probe fractions along an increasing n schedule must be non-decreasing (up
// to small sampling wobble).
func TestSearcherMonotonicity(t *testing.T) {
	pool := datagen.Criteo(datagen.Config{Rows: 12000, Dim: 400, Seed: 7})
	spec := models.LogisticRegression{Reg: 0.001}
	env := NewEnv(pool, Options{Epsilon: 0.05, Seed: 8})
	opt := Options{Epsilon: 0.05, Seed: 8}.withDefaults()
	n0 := 500
	approx, err := env.TrainOnSample(spec, n0, 9, defaultOptim())
	if err != nil {
		t.Fatal(err)
	}
	sample := poolOf(t, env).Subset(make([]int, 0)) // placeholder, stats need the sample
	_ = sample
	st, err := ComputeStatistics(spec, poolOf(t, env).Subset(firstK(env.PoolLen(), n0)), approx.Theta, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(spec, approx.Theta, st.Factor, n0, env.PoolLen(), env.Holdout(), 0.05, 0.05, 100, stat.NewRNG(10))
	prev := -1.0
	for _, n := range []int{n0, 2 * n0, 4 * n0, 8 * n0, env.PoolLen()} {
		p := s.Probe(n)
		if p.Fraction < prev-0.1 {
			t.Fatalf("fraction dropped from %v to %v at n=%d", prev, p.Fraction, n)
		}
		if p.Fraction > prev {
			prev = p.Fraction
		}
	}
	if last := s.Probe(env.PoolLen()); !last.Satisfied || last.Fraction != 1 {
		t.Fatalf("probe at N must be trivially satisfied: %+v", last)
	}
}

func firstK(n, k int) []int {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// The search result must itself satisfy the probe criterion and be minimal
// up to binary-search granularity.
func TestSearcherFindsSatisfyingSize(t *testing.T) {
	pool := datagen.Higgs(datagen.Config{Rows: 16000, Dim: 10, Seed: 11})
	spec := models.LogisticRegression{Reg: 0.01}
	env := NewEnv(pool, Options{Epsilon: 0.03, Seed: 12})
	n0 := 400
	approx, err := env.TrainOnSample(spec, n0, 13, defaultOptim())
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeStatistics(spec, poolOf(t, env).Subset(firstK(env.PoolLen(), n0)), approx.Theta, Options{Epsilon: 0.03}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(spec, approx.Theta, st.Factor, n0, env.PoolLen(), env.Holdout(), 0.03, 0.05, 100, stat.NewRNG(14))
	res := s.Search()
	if res.N < n0 || res.N > env.PoolLen() {
		t.Fatalf("chosen n=%d outside [%d, %d]", res.N, n0, env.PoolLen())
	}
	if !s.Probe(res.N).Satisfied {
		t.Fatalf("chosen n=%d does not satisfy its own probe", res.N)
	}
	if len(res.Probes) == 0 {
		t.Fatal("no probes recorded")
	}
}

// The linear-score fast path and the generic path must agree.
func TestSearcherScorePathMatchesGeneric(t *testing.T) {
	pool := datagen.Higgs(datagen.Config{Rows: 8000, Dim: 7, Seed: 15})
	spec := models.LogisticRegression{Reg: 0.01}
	env := NewEnv(pool, Options{Epsilon: 0.05, Seed: 16})
	n0 := 400
	approx, err := env.TrainOnSample(spec, n0, 17, defaultOptim())
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeStatistics(spec, poolOf(t, env).Subset(firstK(env.PoolLen(), n0)), approx.Theta, Options{Epsilon: 0.05}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	fast := NewSearcher(spec, approx.Theta, st.Factor, n0, env.PoolLen(), env.Holdout(), 0.05, 0.05, 80, stat.NewRNG(18))
	slow := NewSearcher(hideScores{spec}, approx.Theta, st.Factor, n0, env.PoolLen(), env.Holdout(), 0.05, 0.05, 80, stat.NewRNG(18))
	if fast.scoreModel == nil {
		t.Fatal("fast searcher did not take the score path")
	}
	if slow.scoreModel != nil {
		t.Fatal("hideScores failed to force the generic path")
	}
	for _, n := range []int{n0, 3 * n0, 10 * n0} {
		pf := fast.Probe(n)
		ps := slow.Probe(n)
		if math.Abs(pf.Fraction-ps.Fraction) > 0.05 {
			t.Fatalf("n=%d: fast fraction %v, generic %v", n, pf.Fraction, ps.Fraction)
		}
	}
}
