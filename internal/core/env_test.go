package core

import (
	"sync"
	"testing"

	"blinkml/internal/datagen"
)

// TestSharedSampleNestingAndReuse checks the tune subsystem's sample-reuse
// contract: SharedSample(m) is a prefix of SharedSample(n) for m ≤ n, sizes
// are memoized (same *Dataset back), the draw is deterministic in the env
// seed, and n clamps to the pool.
func TestSharedSampleNestingAndReuse(t *testing.T) {
	ds, err := datagen.Generate("higgs", datagen.Config{Rows: 2000, Dim: 8, Seed: 3})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	opt := Options{Epsilon: 0.1, Seed: 9}
	env := NewEnv(ds, opt)

	small := sharedSampleOf(t, env, 100)
	big := sharedSampleOf(t, env, 400)
	if small.Len() != 100 || big.Len() != 400 {
		t.Fatalf("sizes %d/%d, want 100/400", small.Len(), big.Len())
	}
	for i := 0; i < small.Len(); i++ {
		a := make([]float64, ds.Dim)
		b := make([]float64, ds.Dim)
		small.X[i].AddTo(a, 1)
		big.X[i].AddTo(b, 1)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d: samples are not nested", i)
			}
		}
		if small.Y[i] != big.Y[i] {
			t.Fatalf("row %d: labels are not nested", i)
		}
	}
	if again := sharedSampleOf(t, env, 100); again != small {
		t.Fatal("same size not memoized")
	}
	if full := sharedSampleOf(t, env, env.PoolLen()+50); full != poolOf(t, env) {
		t.Fatal("oversized request should return the pool itself")
	}

	// Deterministic in the env seed.
	env2 := NewEnv(ds, opt)
	other := sharedSampleOf(t, env2, 100)
	for i := 0; i < 100; i++ {
		if small.Y[i] != other.Y[i] {
			t.Fatalf("row %d differs across identically seeded envs", i)
		}
	}
}

// TestSharedSampleConcurrent hammers the memoizing cache from many
// goroutines (the halving worker pool's access pattern).
func TestSharedSampleConcurrent(t *testing.T) {
	ds, err := datagen.Generate("higgs", datagen.Config{Rows: 3000, Dim: 5, Seed: 1})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	env := NewEnv(ds, Options{Epsilon: 0.1, Seed: 2})
	sizes := []int{50, 100, 200, 400, 800}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n := sizes[(w+i)%len(sizes)]
				got, err := env.SharedSample(n)
				if err != nil {
					t.Errorf("shared sample %d: %v", n, err)
					return
				}
				if got.Len() != n {
					t.Errorf("size %d, want %d", got.Len(), n)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
