package core

import (
	"testing"

	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
	"blinkml/internal/stat"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// linear-score fast path in the Sample Size Estimator, the
// sampling-by-scaling reuse of factor draws, and the Gram-side vs
// covariance-side ObservedFisher paths.

func benchSearcherSetup(b *testing.B, hide bool) *Searcher {
	b.Helper()
	ds := datagen.Criteo(datagen.Config{Rows: 20000, Dim: 500, Seed: 1})
	var spec models.Spec = models.LogisticRegression{Reg: 0.001}
	env := NewEnv(ds, Options{Epsilon: 0.05, Seed: 2})
	n0 := 500
	rng := stat.NewRNG(3)
	sample := poolOf(b, env).Subset(dataset.SampleWithoutReplacement(rng, env.PoolLen(), n0))
	fit, err := models.Train(spec, sample, nil, optimize.Options{})
	if err != nil {
		b.Fatal(err)
	}
	st, err := ComputeStatistics(spec, sample, fit.Theta, Options{Epsilon: 0.05}.withDefaults())
	if err != nil {
		b.Fatal(err)
	}
	if hide {
		spec = hideScores{spec}
	}
	return NewSearcher(spec, fit.Theta, st.Factor, n0, env.PoolLen(), env.Holdout(), 0.05, 0.05, 100, stat.NewRNG(4))
}

// BenchmarkAblationProbeScorePath measures one SSE probe with the
// precomputed-score fast path.
func BenchmarkAblationProbeScorePath(b *testing.B) {
	s := benchSearcherSetup(b, false)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Probe(2000 + i%3)
	}
}

// BenchmarkAblationProbeGenericPath measures the same probe without the
// fast path (materialized parameter vectors + full Diff per pair).
func BenchmarkAblationProbeGenericPath(b *testing.B) {
	s := benchSearcherSetup(b, true)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Probe(2000 + i%3)
	}
}

// BenchmarkAblationSamplingByScaling measures drawing k parameter samples
// by rescaling pre-applied factor draws (the §4.3 optimization)...
func BenchmarkAblationSamplingByScaling(b *testing.B) {
	s := benchSearcherSetup(b, true)
	d := len(s.theta0)
	theta := make([]float64, d)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a1 := sqrt(Alpha(s.n0, 4000))
		for k := 0; k < s.k; k++ {
			for j := 0; j < d; j++ {
				theta[j] = s.theta0[j] + a1*s.w1[k][j]
			}
		}
	}
}

// ...versus re-invoking the factor for every draw (what a naive sampler
// would do for each candidate n).
func BenchmarkAblationSamplingNaive(b *testing.B) {
	ds := datagen.Criteo(datagen.Config{Rows: 20000, Dim: 500, Seed: 1})
	spec := models.LogisticRegression{Reg: 0.001}
	env := NewEnv(ds, Options{Epsilon: 0.05, Seed: 2})
	rng := stat.NewRNG(3)
	n0 := 500
	sample := poolOf(b, env).Subset(dataset.SampleWithoutReplacement(rng, env.PoolLen(), n0))
	fit, err := models.Train(spec, sample, nil, optimize.Options{})
	if err != nil {
		b.Fatal(err)
	}
	st, err := ComputeStatistics(spec, sample, fit.Theta, Options{Epsilon: 0.05}.withDefaults())
	if err != nil {
		b.Fatal(err)
	}
	d := len(fit.Theta)
	theta := make([]float64, d)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a1 := sqrt(Alpha(n0, 4000))
		for k := 0; k < 100; k++ {
			Sample(st.Factor, rng, fit.Theta, a1, theta)
		}
	}
}

// BenchmarkAblationFisherGramSide and ...CovarianceSide compare the two
// ObservedFisher paths on the same statistics problem (d ≈ n, where either
// side is feasible).
func benchFisherRows(b *testing.B) ([]dataset.Row, []float64, int, int) {
	b.Helper()
	ds := datagen.Higgs(datagen.Config{Rows: 400, Dim: 40, Seed: 5})
	spec := models.LogisticRegression{Reg: 0.01}
	fit, err := models.Train(spec, ds, nil, optimize.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rows := models.PerExampleGradRows(spec, ds, fit.Theta)
	mean := make([]float64, len(fit.Theta))
	for _, r := range rows {
		r.AddTo(mean, 1)
	}
	for i := range mean {
		mean[i] /= float64(len(rows))
	}
	return rows, mean, len(fit.Theta), len(rows)
}

func BenchmarkAblationFisherCovarianceSide(b *testing.B) {
	rows, mean, d, n := benchFisherRows(b)
	opt := Options{Epsilon: 0.05}.withDefaults()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fisherCovarianceSide(rows, mean, d, n, 0.01, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFisherGramSide(b *testing.B) {
	rows, mean, d, n := benchFisherRows(b)
	opt := Options{Epsilon: 0.05}.withDefaults()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fisherGramSide(rows, mean, d, n, 0.01, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoordinatorEndToEnd times one full BlinkML run (all four
// phases) on a mid-size sparse workload.
func BenchmarkCoordinatorEndToEnd(b *testing.B) {
	ds := datagen.Criteo(datagen.Config{Rows: 20000, Dim: 500, Seed: 6})
	spec := models.LogisticRegression{Reg: 0.001}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(spec, ds, Options{Epsilon: 0.05, Seed: int64(i), InitialSampleSize: 500, K: 60}); err != nil {
			b.Fatal(err)
		}
	}
}
