package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/obs"
	"blinkml/internal/optimize"
	"blinkml/internal/stat"
)

// Diagnostics breaks a BlinkML run into the four phases of Figure 8a plus
// estimator internals.
type Diagnostics struct {
	InitialTrain time.Duration
	Statistics   time.Duration
	SampleSearch time.Duration
	FinalTrain   time.Duration

	InitialEpsilon float64 // ε₀, the accuracy estimate of the initial model
	InitialIters   int
	FinalIters     int
	Rank           int
	GradsCalls     int
	Probes         []Probe
	Method         Method
}

// Total returns the end-to-end BlinkML time.
func (d Diagnostics) Total() time.Duration {
	return d.InitialTrain + d.Statistics + d.SampleSearch + d.FinalTrain
}

// Result is an approximate model with its accuracy contract.
type Result struct {
	Theta      []float64
	SampleSize int
	// EstimatedEpsilon is the bound ε such that Pr[v(m_n) ≤ ε] ≥ 1−δ: the
	// initial model's estimate when it already satisfies the request, or
	// the requested ε when the final model was sized to meet it.
	EstimatedEpsilon float64
	UsedInitialModel bool
	PoolSize         int // N, what the full model would train on
	Diag             Diagnostics
}

// Env is a prepared training environment: the train/holdout/test split that
// both BlinkML and the full-model baseline must share so their predictions
// are comparable (the experiments in §5 measure v(m_n, m_N) on the same
// holdout). An Env is built from a dataset.Source — an in-memory dataset or
// a disk-backed store handle — and holds the pool as indices only: the
// holdout and test sets are materialized eagerly (they are small and the
// estimator reads them constantly) while pool rows are materialized on
// demand, exactly the rows a sample requests. That is what keeps a
// store-backed training run's memory at O(n + holdout) instead of O(N).
// An Env is logically read-only after construction, so concurrent
// TrainApprox/TrainFull calls on one Env are safe — the hyperparameter-
// search subsystem relies on this to evaluate many candidates over a single
// data preparation.
type Env struct {
	src     dataset.Source
	meta    dataset.Meta
	poolIdx []int            // source indices forming the full model's training set (size N)
	holdout *dataset.Dataset // diff() evaluation set, never trained on
	test    *dataset.Dataset // generalization-error reporting (may be empty)
	seed    int64

	// Lazy materializations: the full pool (only the full-training baseline
	// needs it) and the shared-sample cache (one pool permutation plus the
	// materialized nested prefixes), built under mu.
	mu      sync.Mutex
	pool    *dataset.Dataset
	perm    []int
	samples map[int]*dataset.Dataset
}

// NewEnv splits the in-memory ds according to opt (deterministic in
// opt.Seed). Rows are shared with ds, never copied.
func NewEnv(ds *dataset.Dataset, opt Options) *Env {
	env, err := NewEnvFromSource(ds, opt)
	if err != nil {
		// In-memory materialization is Subset, which cannot fail.
		panic(fmt.Sprintf("core: NewEnv: %v", err))
	}
	return env
}

// NewEnvFromSource splits src according to opt. The split indices and every
// later sample draw consume the RNG identically to the in-memory path, so a
// store-backed Env yields byte-identical training runs to NewEnv over the
// same rows at the same seed. Only the holdout and test rows are read here.
func NewEnvFromSource(src dataset.Source, opt Options) (*Env, error) {
	opt = opt.withDefaults()
	meta := src.Meta()
	rng := stat.NewRNG(opt.Seed)
	n := meta.Rows
	split := dataset.NewSplit(rng, n, cappedHoldoutFraction(n, opt), opt.TestFraction)
	holdout, err := src.Materialize(split.Holdout)
	if err != nil {
		return nil, fmt.Errorf("core: materialize holdout: %w", err)
	}
	test, err := src.Materialize(split.Test)
	if err != nil {
		return nil, fmt.Errorf("core: materialize test set: %w", err)
	}
	return &Env{
		src:     src,
		meta:    meta,
		poolIdx: split.Train,
		holdout: holdout,
		test:    test,
		seed:    opt.Seed,
	}, nil
}

// cappedHoldoutFraction applies the MaxHoldout row cap to the holdout
// fraction for an n-row dataset (opt must already have defaults applied).
func cappedHoldoutFraction(n int, opt Options) float64 {
	hf := opt.HoldoutFraction
	if max := float64(opt.MaxHoldout) / float64(n); hf > max {
		hf = max
	}
	return hf
}

// PoolSize returns N — the training-pool size an Env built over an n-row
// source with these options would have — from the row count alone. A
// scheduler dispatching work to remote environments uses it to know the
// pool size without materializing a single row; it is exact: the same
// arithmetic NewEnvFromSource's split uses.
func PoolSize(rows int, opt Options) int {
	opt = opt.withDefaults()
	h, t := dataset.SplitSizes(rows, cappedHoldoutFraction(rows, opt), opt.TestFraction)
	return rows - h - t
}

// Seed returns the seed the environment was split with; derived per-
// candidate seeds should be built from it so a whole search stays
// deterministic in one number.
func (e *Env) Seed() int64 { return e.seed }

// PoolLen returns N, the number of rows the full model would train on. It
// never touches the source's rows.
func (e *Env) PoolLen() int { return len(e.poolIdx) }

// Holdout returns the materialized holdout set (never trained on; what
// diff() evaluates).
func (e *Env) Holdout() *dataset.Dataset { return e.holdout }

// Test returns the materialized test set (may be empty).
func (e *Env) Test() *dataset.Dataset { return e.test }

// materialize fetches the pool rows at the given pool-relative indices.
func (e *Env) materialize(rel []int) (*dataset.Dataset, error) {
	abs := make([]int, len(rel))
	for i, r := range rel {
		abs[i] = e.poolIdx[r]
	}
	ds, err := e.src.Materialize(abs)
	if err != nil {
		return nil, fmt.Errorf("core: materialize sample: %w", err)
	}
	return ds, nil
}

// Pool materializes (and memoizes) the entire training pool. The BlinkML
// path never calls it — only full-model baselines do, and on a disk-backed
// source with a row budget it fails rather than silently loading N rows.
func (e *Env) Pool() (*dataset.Dataset, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pool == nil {
		rel := make([]int, len(e.poolIdx))
		for i := range rel {
			rel[i] = i
		}
		pool, err := e.materialize(rel)
		if err != nil {
			return nil, err
		}
		e.pool = pool
	}
	return e.pool, nil
}

// Sample draws n pool rows uniformly without replacement using rng and
// materializes exactly those rows (the baseline strategies and experiments
// drive this directly with their own RNGs).
func (e *Env) Sample(rng *stat.RNG, n int) (*dataset.Dataset, error) {
	return e.materialize(dataset.SampleWithoutReplacement(rng, e.PoolLen(), n))
}

// SharedSample returns the subset formed by the first n rows of a fixed,
// seed-deterministic permutation of the pool (n is clamped to the pool
// size). Successive calls share one permutation, so samples are nested —
// SharedSample(m) is a prefix of SharedSample(n) for m ≤ n — and each size
// is materialized once and memoized. This is the sample-reuse hook for
// workloads that train many models on increasing subsamples (successive-
// halving hyperparameter search): candidates probing the same size share
// one subset, and a candidate promoted to a larger rung trains on a strict
// superset of the rows it has already seen, which makes warm starts honest.
// On a store-backed Env each size reads only its n rows off disk. Safe for
// concurrent use.
func (e *Env) SharedSample(n int) (*dataset.Dataset, error) {
	if n >= e.PoolLen() {
		return e.Pool()
	}
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.perm == nil {
		e.perm = stat.NewRNG(e.seed + 0x5A3D).Perm(e.PoolLen())
		e.samples = make(map[int]*dataset.Dataset)
	}
	if ds, ok := e.samples[n]; ok {
		return ds, nil
	}
	ds, err := e.materialize(e.perm[:n:n])
	if err != nil {
		return nil, err
	}
	e.samples[n] = ds
	return ds, nil
}

// Train runs the full BlinkML workflow (§2.3) on ds: split, train the
// initial model m₀ on n₀ rows, estimate its accuracy, and — only if the
// estimate misses the requested ε — size and train one final model. At most
// two approximate models are ever trained.
func Train(spec models.Spec, ds *dataset.Dataset, opt Options) (*Result, error) {
	return TrainContext(context.Background(), spec, ds, opt)
}

// TrainContext is Train with cancellation: the coordinator checks ctx at
// every phase boundary and the optimizers poll it between iterations, so a
// cancelled training job stops burning CPU promptly and returns ctx.Err()
// (wrapped).
func TrainContext(ctx context.Context, spec models.Spec, ds *dataset.Dataset, opt Options) (*Result, error) {
	return TrainSourceContext(ctx, spec, ds, opt)
}

// TrainSource runs the BlinkML workflow against any dataset.Source — an
// in-memory dataset or a disk-backed store handle. With a store handle the
// coordinator materializes only the rows it samples plus the holdout, so an
// (ε, δ) contract against an N-row dataset costs O(n) memory, not O(N):
// the paper's headline economics, preserved end to end.
func TrainSource(spec models.Spec, src dataset.Source, opt Options) (*Result, error) {
	return TrainSourceContext(context.Background(), spec, src, opt)
}

// TrainSourceContext is TrainSource with cancellation (see TrainContext).
func TrainSourceContext(ctx context.Context, spec models.Spec, src dataset.Source, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	endIngest := obs.StartSpan(ctx, "ingest")
	env, err := NewEnvFromSource(src, opt)
	endIngest()
	if err != nil {
		return nil, err
	}
	return env.TrainApproxContext(ctx, spec, opt)
}

// TrainApprox runs the BlinkML coordinator inside a prepared environment.
func (e *Env) TrainApprox(spec models.Spec, opt Options) (*Result, error) {
	return e.TrainApproxContext(context.Background(), spec, opt)
}

// TrainApproxContext is TrainApprox with cancellation (see TrainContext).
func (e *Env) TrainApproxContext(ctx context.Context, spec models.Spec, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	opt.Optimizer = withCancel(ctx, opt.Optimizer)
	bigN := e.PoolLen()
	if bigN == 0 {
		return nil, errors.New("core: empty training pool")
	}
	rng := stat.NewRNG(opt.Seed + 0x5EED)
	diag := Diagnostics{Method: opt.Method}

	n0 := opt.InitialSampleSize
	if n0 > bigN {
		n0 = bigN
	}

	// Phase 1: initial model m₀ on a uniform sample of size n₀.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	endSample := obs.StartSpan(ctx, "sample")
	sample0, err := e.Sample(rng, n0)
	endSample()
	if err != nil {
		return nil, err
	}
	endOpt := obs.StartSpan(ctx, "optimize")
	m0, err := models.Train(spec, sample0, nil, opt.Optimizer)
	endOpt()
	if err != nil {
		return nil, fmt.Errorf("core: initial training failed: %w", err)
	}
	diag.InitialTrain = time.Since(start)
	diag.InitialIters = m0.Iters

	if n0 >= bigN {
		// The "sample" already is the full pool; nothing to approximate.
		return &Result{
			Theta:            m0.Theta,
			SampleSize:       n0,
			EstimatedEpsilon: 0,
			UsedInitialModel: true,
			PoolSize:         bigN,
			Diag:             diag,
		}, nil
	}

	// Phase 2: statistics (H, J → sampling factor) at θ₀.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start = time.Now()
	endStats := obs.StartSpan(ctx, "statistics")
	stats, err := ComputeStatistics(spec, sample0, m0.Theta, opt)
	endStats()
	if err != nil {
		return nil, fmt.Errorf("core: statistics computation failed: %w", err)
	}
	diag.Statistics = time.Since(start)
	diag.Rank = stats.Rank
	diag.GradsCalls = stats.GradsCalls
	factor := Inflate(stats.Factor, opt.VarianceInflation)

	// Phase 3: accuracy estimate for m₀; early exit if it already meets ε.
	start = time.Now()
	endProbe := obs.StartSpan(ctx, "probe")
	est := EstimateAccuracy(spec, m0.Theta, factor, Alpha(n0, bigN), e.holdout, opt.K, opt.Delta, rng)
	diag.InitialEpsilon = est.Epsilon
	if est.Epsilon <= opt.Epsilon {
		endProbe()
		diag.SampleSearch = time.Since(start)
		return &Result{
			Theta:            m0.Theta,
			SampleSize:       n0,
			EstimatedEpsilon: est.Epsilon,
			UsedInitialModel: true,
			PoolSize:         bigN,
			Diag:             diag,
		}, nil
	}

	// Phase 3b: minimum sample size via two-stage sampling + binary search.
	searcher := NewSearcher(spec, m0.Theta, factor, n0, bigN, e.holdout, opt.Epsilon, opt.Delta, opt.K, rng)
	sres := searcher.Search()
	endProbe()
	diag.SampleSearch = time.Since(start)
	diag.Probes = sres.Probes
	n := sres.N
	if n < opt.MinSampleSize {
		n = opt.MinSampleSize
	}
	if n > bigN {
		n = bigN
	}

	// Phase 4: final model m_n on a fresh uniform sample of size n.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start = time.Now()
	endSampleN := obs.StartSpan(ctx, "sample")
	sampleN, err := e.Sample(rng, n)
	endSampleN()
	if err != nil {
		return nil, err
	}
	var warm []float64
	if opt.WarmStart {
		warm = m0.Theta
	}
	endOptN := obs.StartSpan(ctx, "optimize")
	mn, err := models.Train(spec, sampleN, warm, opt.Optimizer)
	endOptN()
	if err != nil {
		return nil, fmt.Errorf("core: final training failed: %w", err)
	}
	diag.FinalTrain = time.Since(start)
	diag.FinalIters = mn.Iters

	return &Result{
		Theta:            mn.Theta,
		SampleSize:       n,
		EstimatedEpsilon: opt.Epsilon,
		UsedInitialModel: false,
		PoolSize:         bigN,
		Diag:             diag,
	}, nil
}

// WithCancel chains ctx into the optimizer's per-iteration Stop poll,
// preserving any Stop the caller already installed. The coordinator applies
// it automatically; callers driving models.Train directly under a context
// (the tune subsystem's pruning rungs) apply it themselves.
func WithCancel(ctx context.Context, opt optimize.Options) optimize.Options {
	return withCancel(ctx, opt)
}

// withCancel chains ctx into the optimizer's per-iteration Stop poll,
// preserving any Stop the caller already installed.
func withCancel(ctx context.Context, opt optimize.Options) optimize.Options {
	if ctx == nil || ctx.Done() == nil {
		return opt // context.Background(): nothing to poll
	}
	prev := opt.Stop
	opt.Stop = func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if prev != nil {
			return prev()
		}
		return nil
	}
	return opt
}

// FullResult is a conventionally trained full model, for baselines.
type FullResult struct {
	Theta []float64
	Iters int
	Time  time.Duration
}

// TrainFull trains spec on the entire pool — the "traditional ML library"
// path of Figure 1 that BlinkML is compared against. This is the one path
// that materializes all N pool rows.
func (e *Env) TrainFull(spec models.Spec, optim optimize.Options) (*FullResult, error) {
	pool, err := e.Pool()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := models.Train(spec, pool, nil, optim)
	if err != nil {
		return nil, fmt.Errorf("core: full training failed: %w", err)
	}
	return &FullResult{Theta: res.Theta, Iters: res.Iters, Time: time.Since(start)}, nil
}

// TrainOnSample trains spec on a fresh uniform sample of size n from the
// pool (used by the baseline strategies of §5.4).
func (e *Env) TrainOnSample(spec models.Spec, n int, seed int64, optim optimize.Options) (*FullResult, error) {
	if n > e.PoolLen() {
		n = e.PoolLen()
	}
	if n <= 0 {
		return nil, errors.New("core: sample size must be positive")
	}
	sample, err := e.Sample(stat.NewRNG(seed), n)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := models.Train(spec, sample, nil, optim)
	if err != nil {
		return nil, err
	}
	return &FullResult{Theta: res.Theta, Iters: res.Iters, Time: time.Since(start)}, nil
}
