package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
	"blinkml/internal/stat"
)

// Diagnostics breaks a BlinkML run into the four phases of Figure 8a plus
// estimator internals.
type Diagnostics struct {
	InitialTrain time.Duration
	Statistics   time.Duration
	SampleSearch time.Duration
	FinalTrain   time.Duration

	InitialEpsilon float64 // ε₀, the accuracy estimate of the initial model
	InitialIters   int
	FinalIters     int
	Rank           int
	GradsCalls     int
	Probes         []Probe
	Method         Method
}

// Total returns the end-to-end BlinkML time.
func (d Diagnostics) Total() time.Duration {
	return d.InitialTrain + d.Statistics + d.SampleSearch + d.FinalTrain
}

// Result is an approximate model with its accuracy contract.
type Result struct {
	Theta      []float64
	SampleSize int
	// EstimatedEpsilon is the bound ε such that Pr[v(m_n) ≤ ε] ≥ 1−δ: the
	// initial model's estimate when it already satisfies the request, or
	// the requested ε when the final model was sized to meet it.
	EstimatedEpsilon float64
	UsedInitialModel bool
	PoolSize         int // N, what the full model would train on
	Diag             Diagnostics
}

// Env is a prepared training environment: the train/holdout/test split that
// both BlinkML and the full-model baseline must share so their predictions
// are comparable (the experiments in §5 measure v(m_n, m_N) on the same
// holdout). An Env is read-only after construction, so concurrent
// TrainApprox/TrainFull calls on one Env are safe — the hyperparameter-
// search subsystem relies on this to evaluate many candidates over a single
// data preparation.
type Env struct {
	Pool    *dataset.Dataset // the full model's training set (size N)
	Holdout *dataset.Dataset // diff() evaluation set, never trained on
	Test    *dataset.Dataset // generalization-error reporting (may be empty)
	seed    int64

	// Shared-sample cache (see SharedSample): one pool permutation plus the
	// materialized nested prefixes, built lazily under mu.
	mu      sync.Mutex
	perm    []int
	samples map[int]*dataset.Dataset
}

// NewEnv splits ds according to opt (deterministic in opt.Seed).
func NewEnv(ds *dataset.Dataset, opt Options) *Env {
	opt = opt.withDefaults()
	rng := stat.NewRNG(opt.Seed)
	n := ds.Len()
	hf := opt.HoldoutFraction
	if max := float64(opt.MaxHoldout) / float64(n); hf > max {
		hf = max
	}
	split := dataset.NewSplit(rng, n, hf, opt.TestFraction)
	return &Env{
		Pool:    ds.Subset(split.Train),
		Holdout: ds.Subset(split.Holdout),
		Test:    ds.Subset(split.Test),
		seed:    opt.Seed,
	}
}

// Seed returns the seed the environment was split with; derived per-
// candidate seeds should be built from it so a whole search stays
// deterministic in one number.
func (e *Env) Seed() int64 { return e.seed }

// SharedSample returns the subset formed by the first n rows of a fixed,
// seed-deterministic permutation of the pool (n is clamped to the pool
// size). Successive calls share one permutation, so samples are nested —
// SharedSample(m) is a prefix of SharedSample(n) for m ≤ n — and each size
// is materialized once and memoized. This is the sample-reuse hook for
// workloads that train many models on increasing subsamples (successive-
// halving hyperparameter search): candidates probing the same size share
// one subset, and a candidate promoted to a larger rung trains on a strict
// superset of the rows it has already seen, which makes warm starts honest.
// Safe for concurrent use.
func (e *Env) SharedSample(n int) *dataset.Dataset {
	if n >= e.Pool.Len() {
		return e.Pool
	}
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.perm == nil {
		e.perm = stat.NewRNG(e.seed + 0x5A3D).Perm(e.Pool.Len())
		e.samples = make(map[int]*dataset.Dataset)
	}
	if ds, ok := e.samples[n]; ok {
		return ds
	}
	ds := e.Pool.Subset(e.perm[:n:n])
	e.samples[n] = ds
	return ds
}

// Train runs the full BlinkML workflow (§2.3) on ds: split, train the
// initial model m₀ on n₀ rows, estimate its accuracy, and — only if the
// estimate misses the requested ε — size and train one final model. At most
// two approximate models are ever trained.
func Train(spec models.Spec, ds *dataset.Dataset, opt Options) (*Result, error) {
	return TrainContext(context.Background(), spec, ds, opt)
}

// TrainContext is Train with cancellation: the coordinator checks ctx at
// every phase boundary and the optimizers poll it between iterations, so a
// cancelled training job stops burning CPU promptly and returns ctx.Err()
// (wrapped).
func TrainContext(ctx context.Context, spec models.Spec, ds *dataset.Dataset, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	return NewEnv(ds, opt).TrainApproxContext(ctx, spec, opt)
}

// TrainApprox runs the BlinkML coordinator inside a prepared environment.
func (e *Env) TrainApprox(spec models.Spec, opt Options) (*Result, error) {
	return e.TrainApproxContext(context.Background(), spec, opt)
}

// TrainApproxContext is TrainApprox with cancellation (see TrainContext).
func (e *Env) TrainApproxContext(ctx context.Context, spec models.Spec, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	opt.Optimizer = withCancel(ctx, opt.Optimizer)
	bigN := e.Pool.Len()
	if bigN == 0 {
		return nil, errors.New("core: empty training pool")
	}
	rng := stat.NewRNG(opt.Seed + 0x5EED)
	diag := Diagnostics{Method: opt.Method}

	n0 := opt.InitialSampleSize
	if n0 > bigN {
		n0 = bigN
	}

	// Phase 1: initial model m₀ on a uniform sample of size n₀.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	sample0 := e.Pool.Subset(dataset.SampleWithoutReplacement(rng, bigN, n0))
	m0, err := models.Train(spec, sample0, nil, opt.Optimizer)
	if err != nil {
		return nil, fmt.Errorf("core: initial training failed: %w", err)
	}
	diag.InitialTrain = time.Since(start)
	diag.InitialIters = m0.Iters

	if n0 >= bigN {
		// The "sample" already is the full pool; nothing to approximate.
		return &Result{
			Theta:            m0.Theta,
			SampleSize:       n0,
			EstimatedEpsilon: 0,
			UsedInitialModel: true,
			PoolSize:         bigN,
			Diag:             diag,
		}, nil
	}

	// Phase 2: statistics (H, J → sampling factor) at θ₀.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start = time.Now()
	stats, err := ComputeStatistics(spec, sample0, m0.Theta, opt)
	if err != nil {
		return nil, fmt.Errorf("core: statistics computation failed: %w", err)
	}
	diag.Statistics = time.Since(start)
	diag.Rank = stats.Rank
	diag.GradsCalls = stats.GradsCalls
	factor := Inflate(stats.Factor, opt.VarianceInflation)

	// Phase 3: accuracy estimate for m₀; early exit if it already meets ε.
	start = time.Now()
	est := EstimateAccuracy(spec, m0.Theta, factor, Alpha(n0, bigN), e.Holdout, opt.K, opt.Delta, rng)
	diag.InitialEpsilon = est.Epsilon
	if est.Epsilon <= opt.Epsilon {
		diag.SampleSearch = time.Since(start)
		return &Result{
			Theta:            m0.Theta,
			SampleSize:       n0,
			EstimatedEpsilon: est.Epsilon,
			UsedInitialModel: true,
			PoolSize:         bigN,
			Diag:             diag,
		}, nil
	}

	// Phase 3b: minimum sample size via two-stage sampling + binary search.
	searcher := NewSearcher(spec, m0.Theta, factor, n0, bigN, e.Holdout, opt.Epsilon, opt.Delta, opt.K, rng)
	sres := searcher.Search()
	diag.SampleSearch = time.Since(start)
	diag.Probes = sres.Probes
	n := sres.N
	if n < opt.MinSampleSize {
		n = opt.MinSampleSize
	}
	if n > bigN {
		n = bigN
	}

	// Phase 4: final model m_n on a fresh uniform sample of size n.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start = time.Now()
	sampleN := e.Pool.Subset(dataset.SampleWithoutReplacement(rng, bigN, n))
	var warm []float64
	if opt.WarmStart {
		warm = m0.Theta
	}
	mn, err := models.Train(spec, sampleN, warm, opt.Optimizer)
	if err != nil {
		return nil, fmt.Errorf("core: final training failed: %w", err)
	}
	diag.FinalTrain = time.Since(start)
	diag.FinalIters = mn.Iters

	return &Result{
		Theta:            mn.Theta,
		SampleSize:       n,
		EstimatedEpsilon: opt.Epsilon,
		UsedInitialModel: false,
		PoolSize:         bigN,
		Diag:             diag,
	}, nil
}

// WithCancel chains ctx into the optimizer's per-iteration Stop poll,
// preserving any Stop the caller already installed. The coordinator applies
// it automatically; callers driving models.Train directly under a context
// (the tune subsystem's pruning rungs) apply it themselves.
func WithCancel(ctx context.Context, opt optimize.Options) optimize.Options {
	return withCancel(ctx, opt)
}

// withCancel chains ctx into the optimizer's per-iteration Stop poll,
// preserving any Stop the caller already installed.
func withCancel(ctx context.Context, opt optimize.Options) optimize.Options {
	if ctx == nil || ctx.Done() == nil {
		return opt // context.Background(): nothing to poll
	}
	prev := opt.Stop
	opt.Stop = func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if prev != nil {
			return prev()
		}
		return nil
	}
	return opt
}

// FullResult is a conventionally trained full model, for baselines.
type FullResult struct {
	Theta []float64
	Iters int
	Time  time.Duration
}

// TrainFull trains spec on the entire pool — the "traditional ML library"
// path of Figure 1 that BlinkML is compared against.
func (e *Env) TrainFull(spec models.Spec, optim optimize.Options) (*FullResult, error) {
	start := time.Now()
	res, err := models.Train(spec, e.Pool, nil, optim)
	if err != nil {
		return nil, fmt.Errorf("core: full training failed: %w", err)
	}
	return &FullResult{Theta: res.Theta, Iters: res.Iters, Time: time.Since(start)}, nil
}

// TrainOnSample trains spec on a fresh uniform sample of size n from the
// pool (used by the baseline strategies of §5.4).
func (e *Env) TrainOnSample(spec models.Spec, n int, seed int64, optim optimize.Options) (*FullResult, error) {
	if n > e.Pool.Len() {
		n = e.Pool.Len()
	}
	if n <= 0 {
		return nil, errors.New("core: sample size must be positive")
	}
	rng := stat.NewRNG(seed)
	sample := e.Pool.Subset(dataset.SampleWithoutReplacement(rng, e.Pool.Len(), n))
	start := time.Now()
	res, err := models.Train(spec, sample, nil, optim)
	if err != nil {
		return nil, err
	}
	return &FullResult{Theta: res.Theta, Iters: res.Iters, Time: time.Since(start)}, nil
}
