package core

import (
	"testing"

	"blinkml/internal/dataset"
)

// poolOf materializes an in-memory env's pool (cannot fail for the
// in-memory sources every test here uses).
func poolOf(tb testing.TB, env *Env) *dataset.Dataset {
	tb.Helper()
	pool, err := env.Pool()
	if err != nil {
		tb.Fatalf("materialize pool: %v", err)
	}
	return pool
}

// sharedSampleOf is SharedSample with the in-memory no-error contract.
func sharedSampleOf(tb testing.TB, env *Env, n int) *dataset.Dataset {
	tb.Helper()
	ds, err := env.SharedSample(n)
	if err != nil {
		tb.Fatalf("shared sample %d: %v", n, err)
	}
	return ds
}
