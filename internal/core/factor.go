package core

import (
	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
	"blinkml/internal/stat"
)

// Factor represents the unscaled covariance of Theorem 1 as a linear map:
// if z ~ N(0, I_rank) then Apply(z) ~ N(0, H⁻¹JH⁻¹). Draws for any sample
// size n are obtained by scaling with √(1/n − 1/N) — the paper's
// "sampling by scaling" optimization (§4.3), which lets the Sample Size
// Estimator probe many n without re-invoking a sampler.
type Factor interface {
	// Dim is the parameter dimension d.
	Dim() int
	// Rank is the latent dimension r (number of independent normal draws
	// consumed per sample).
	Rank() int
	// Apply overwrites dst (len d) with L·z (len(z) = Rank).
	Apply(z, dst []float64)
}

// Sample draws mean + scale·L·z into dst using fresh standard normals from
// rng. It returns the z it consumed so callers can reuse draws across
// scalings.
func Sample(f Factor, rng *stat.RNG, mean []float64, scale float64, dst []float64) []float64 {
	z := make([]float64, f.Rank())
	rng.NormVec(z)
	f.Apply(z, dst)
	for i := range dst {
		dst[i] = mean[i] + scale*dst[i]
	}
	return z
}

// Inflate wraps f so every Apply result is scaled by (1 + inflation) — the
// footnote-2 conservatism knob (Options.VarianceInflation). inflation <= 0
// returns f unchanged.
func Inflate(f Factor, inflation float64) Factor {
	if inflation <= 0 {
		return f
	}
	return &inflatedFactor{f: f, s: 1 + inflation}
}

type inflatedFactor struct {
	f Factor
	s float64
}

// Dim implements Factor.
func (f *inflatedFactor) Dim() int { return f.f.Dim() }

// Rank implements Factor.
func (f *inflatedFactor) Rank() int { return f.f.Rank() }

// Apply implements Factor.
func (f *inflatedFactor) Apply(z, dst []float64) {
	f.f.Apply(z, dst)
	linalg.Scale(f.s, dst)
}

// DenseFactor holds an explicit d x r factor L with L·Lᵀ = H⁻¹JH⁻¹. It is
// produced by the ClosedForm and InverseGradients methods and by
// ObservedFisher when d ≤ n.
type DenseFactor struct {
	L *linalg.Dense
}

// Dim implements Factor.
func (f *DenseFactor) Dim() int { return f.L.Rows }

// Rank implements Factor.
func (f *DenseFactor) Rank() int { return f.L.Cols }

// Apply implements Factor.
func (f *DenseFactor) Apply(z, dst []float64) {
	f.L.MulVec(z, dst)
}

// GradFactor represents L = Q_cᵀ·M without materializing the d x r matrix:
// Q_c is the mean-centered per-example gradient matrix (rows kept sparse)
// and M is a small n x r matrix derived from the Gram-side
// eigendecomposition. Apply costs O(n·r + nnz(Q)), which is how the
// ObservedFisher path keeps memory and time at O(d) for high-dimensional
// models (paper §3.4, §4.3).
type GradFactor struct {
	rows []dataset.Row // qᵢ, uncentered
	mean []float64     // q̄
	m    *linalg.Dense // n x r
	dim  int
}

// Dim implements Factor.
func (f *GradFactor) Dim() int { return f.dim }

// Rank implements Factor.
func (f *GradFactor) Rank() int { return f.m.Cols }

// Apply implements Factor: dst = Σᵢ uᵢ·qᵢ − (Σᵢ uᵢ)·q̄ with u = M·z.
func (f *GradFactor) Apply(z, dst []float64) {
	n := len(f.rows)
	u := make([]float64, n)
	f.m.MulVec(z, u)
	linalg.Fill(dst, 0)
	var uSum float64
	for i, row := range f.rows {
		if u[i] != 0 {
			row.AddTo(dst, u[i])
		}
		uSum += u[i]
	}
	linalg.Axpy(-uSum, f.mean, dst)
}

// Materialize returns the explicit L matrix (for tests and small-d
// diagnostics only; this defeats the purpose of the lazy form at scale).
func (f *GradFactor) Materialize() *linalg.Dense {
	l := linalg.NewDense(f.dim, f.Rank())
	z := make([]float64, f.Rank())
	col := make([]float64, f.dim)
	for j := 0; j < f.Rank(); j++ {
		z[j] = 1
		f.Apply(z, col)
		for i := 0; i < f.dim; i++ {
			l.Set(i, j, col[i])
		}
		z[j] = 0
	}
	return l
}

// Covariance materializes L·Lᵀ for diagnostics on low-dimensional problems.
func Covariance(f Factor) *linalg.Dense {
	var l *linalg.Dense
	switch ff := f.(type) {
	case *DenseFactor:
		l = ff.L
	case *GradFactor:
		l = ff.Materialize()
	default:
		d, r := f.Dim(), f.Rank()
		l = linalg.NewDense(d, r)
		z := make([]float64, r)
		col := make([]float64, d)
		for j := 0; j < r; j++ {
			z[j] = 1
			f.Apply(z, col)
			for i := 0; i < d; i++ {
				l.Set(i, j, col[i])
			}
			z[j] = 0
		}
	}
	return linalg.Syrk(l) // L·Lᵀ without computing both triangles
}
