package core

import (
	"testing"

	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/models"
)

// Sparse-path benchmarks: the statistics pass and a full coordinator run on
// a high-dimensional low-density workload, where cost should track nnz
// rather than dim. CI's bench-smoke step runs these at one iteration so the
// sparse kernels cannot silently rot.

func sparseBenchData(b *testing.B, rows, dim int) *dataset.Dataset {
	b.Helper()
	ds := datagen.Criteo(datagen.Config{Rows: rows, Dim: dim, Seed: 1})
	if !dataset.SparsePath(ds.X) {
		b.Fatalf("criteo fixture at dim %d left the sparse path (density %v)", dim, ds.Density())
	}
	return ds
}

// BenchmarkSparseStatisticsGram measures the Gram-side ObservedFisher on
// sparse rows (dim > n forces the Gram side; density ~1%).
func BenchmarkSparseStatisticsGram(b *testing.B) {
	ds := sparseBenchData(b, 400, 4000)
	spec := models.LogisticRegression{Reg: 0.001}
	theta := make([]float64, ds.Dim)
	for i := range theta {
		theta[i] = 0.01 * float64(i%5)
	}
	opt := Options{Epsilon: 0.05}.withDefaults()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeStatistics(spec, ds, theta, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparseTrainEndToEnd runs the full coordinator (sample, optimize,
// statistics, search) on a sparse high-dimensional dataset.
func BenchmarkSparseTrainEndToEnd(b *testing.B) {
	ds := sparseBenchData(b, 20000, 10000)
	spec := models.LogisticRegression{Reg: 0.001}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(spec, ds, Options{Epsilon: 0.05, Seed: 2, InitialSampleSize: 500}); err != nil {
			b.Fatal(err)
		}
	}
}
