// Package core implements BlinkML itself (paper §2.3–§4): the Coordinator
// workflow, the Model Accuracy Estimator, the Sample Size Estimator, and
// the three statistics-computation methods (ClosedForm, InverseGradients,
// ObservedFisher) that expose the Theorem-1 covariance α·H⁻¹JH⁻¹ as a
// sampling factor.
package core

import (
	"errors"
	"fmt"

	"blinkml/internal/optimize"
)

// Method selects how the H and J statistics of Theorem 1 are computed
// (paper §3.4).
type Method int

const (
	// ObservedFisher (the default) uses the information-matrix equality and
	// a thin SVD of the per-example gradient matrix; it needs a single
	// grads call and never materializes a d x d matrix.
	ObservedFisher Method = iota
	// InverseGradients estimates H column-by-column from finite differences
	// of the batch gradient (d+1 grads calls).
	InverseGradients
	// ClosedForm uses the model's analytic Hessian (models.Hessianer).
	ClosedForm
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case ObservedFisher:
		return "ObservedFisher"
	case InverseGradients:
		return "InverseGradients"
	case ClosedForm:
		return "ClosedForm"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a BlinkML training run. Zero values fall back to the
// defaults noted per field (chosen as laptop-scaled versions of the paper's
// §5.1 setup).
type Options struct {
	// Epsilon is the requested error bound ε on the model difference
	// v(m_n): the approximate model disagrees with the full model on at
	// most an ε fraction of unseen examples. Required, in (0, 1].
	Epsilon float64
	// Delta is the allowed probability of violating the bound (default
	// 0.05, i.e. 95% confidence — the paper's operating point).
	Delta float64
	// InitialSampleSize is n₀, the size of the initial training sample
	// (default 2,000; the paper uses 10,000 at cluster scale). n₀ should be
	// comfortably above the parameter dimension: the Theorem-1 covariance is
	// itself estimated from the initial sample, and with n₀ ≲ d it is
	// rank-starved and optimistic — the same regime behind the paper's own
	// (LR, Criteo, 99%) miss in Table 5.
	InitialSampleSize int
	// K is the number of Monte-Carlo parameter samples used by both
	// estimators (default 100).
	K int
	// Method picks the statistics computation (default ObservedFisher).
	Method Method
	// Seed drives every random choice (splits, samples, parameter draws).
	Seed int64
	// HoldoutFraction of the data is reserved for diff() (default 0.1),
	// capped at MaxHoldout rows (default 2,000).
	HoldoutFraction float64
	MaxHoldout      int
	// TestFraction is carved out for generalization-error reporting
	// (default 0, i.e. no test set; experiments set it explicitly).
	TestFraction float64
	// Optimizer configures the solver (BFGS for d < 100, else L-BFGS).
	Optimizer optimize.Options
	// FDStep is the finite-difference step of InverseGradients (default
	// 1e-6, the paper's ϵ).
	FDStep float64
	// SVDRelTol drops trailing singular values in ObservedFisher (default
	// 1e-8 relative to the largest).
	SVDRelTol float64
	// WarmStart reuses the initial model's parameters to start the final
	// training (off by default so iteration counts stay comparable to full
	// training, as in Figure 8c).
	WarmStart bool
	// VarianceInflation scales every sampled parameter deviation by
	// (1 + VarianceInflation). This is footnote 2 of the paper (error terms
	// compensating a not-fully-converged or noisily estimated J) exposed as
	// a knob: use it for extra conservatism when n₀ is not ≫ d. Default 0,
	// the paper's behaviour.
	VarianceInflation float64
	// MinSampleSize floors the sample-size search (default n₀).
	MinSampleSize int
}

// WithDefaults returns a copy of o with zero fields replaced by the
// documented defaults. Train applies it automatically; callers driving the
// estimators directly (baselines, experiments) apply it themselves.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.Delta <= 0 {
		o.Delta = 0.05
	}
	if o.InitialSampleSize <= 0 {
		o.InitialSampleSize = 2000
	}
	if o.K <= 0 {
		o.K = 100
	}
	if o.HoldoutFraction <= 0 {
		o.HoldoutFraction = 0.1
	}
	if o.MaxHoldout <= 0 {
		o.MaxHoldout = 2000
	}
	if o.FDStep <= 0 {
		o.FDStep = 1e-6
	}
	if o.SVDRelTol <= 0 {
		o.SVDRelTol = 1e-8
	}
	if o.MinSampleSize <= 0 {
		o.MinSampleSize = o.InitialSampleSize
	}
	return o
}

func (o Options) validate() error {
	if o.Epsilon <= 0 || o.Epsilon > 1 {
		return fmt.Errorf("core: Epsilon must be in (0,1], got %v", o.Epsilon)
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		return fmt.Errorf("core: Delta must be in (0,1), got %v", o.Delta)
	}
	return nil
}

// ErrNoHessian is returned when ClosedForm is requested for a model that
// does not implement models.Hessianer.
var ErrNoHessian = errors.New("core: model has no closed-form Hessian; use ObservedFisher or InverseGradients")
