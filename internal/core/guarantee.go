package core

// The guarantee check — does a trained approximation actually sit within
// its promised ε of the full-data model? — used to live only inside
// estimator_test.go. It is exported here so the test and the runtime audit
// plane (internal/audit) validate the contract through one code path and
// cannot drift apart.

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"

	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
)

// GuaranteeReport is the outcome of validating one (ε, δ) training result
// against the ground-truth full-data model.
type GuaranteeReport struct {
	// Realized is v(m_n, m_N): the observed model difference on the holdout.
	Realized float64
	// Bound is the ε̂ the result promised (Result.EstimatedEpsilon).
	Bound float64
	// Satisfied reports Realized ≤ Bound — the event the contract says
	// happens with probability ≥ 1−δ.
	Satisfied bool
	// FullTheta is the full-data model's parameters (set by
	// ValidateGuarantee; nil from CheckGuarantee, whose caller already has
	// them).
	FullTheta []float64
	// FullIters is the full training's iteration count (ValidateGuarantee).
	FullIters int
}

// CheckGuarantee compares an approximate model against an already-trained
// full model: Realized is models.Diff on the holdout, Satisfied whether it
// stays within bound. Callers that amortize one full training across many
// approximate models (the estimator test) use this form directly.
func CheckGuarantee(spec models.Spec, approxTheta, fullTheta []float64, bound float64, holdout *dataset.Dataset) GuaranteeReport {
	realized := models.Diff(spec, approxTheta, fullTheta, holdout)
	return GuaranteeReport{
		Realized:  realized,
		Bound:     bound,
		Satisfied: realized <= bound,
	}
}

// ValidateGuarantee trains the full-data model inside env and checks res
// against it. Training is deterministic in the environment's split and the
// optimizer options, so — per the cluster layer's determinism contract —
// replaying a recorded job through this function at the same seed and
// compute parallelism reproduces the full model bit for bit, which
// ThetaFingerprint makes checkable without storing N parameters.
func ValidateGuarantee(env *Env, spec models.Spec, res *Result, optim optimize.Options) (GuaranteeReport, error) {
	if env == nil || res == nil {
		return GuaranteeReport{}, errors.New("core: ValidateGuarantee needs an environment and a result")
	}
	if len(res.Theta) == 0 {
		return GuaranteeReport{}, errors.New("core: ValidateGuarantee needs the approximate model's parameters")
	}
	full, err := env.TrainFull(spec, optim)
	if err != nil {
		return GuaranteeReport{}, err
	}
	rep := CheckGuarantee(spec, res.Theta, full.Theta, res.EstimatedEpsilon, env.Holdout())
	rep.FullTheta = full.Theta
	rep.FullIters = full.Iters
	return rep, nil
}

// ThetaFingerprint hashes a parameter vector's exact bit pattern (FNV-1a
// over the float64 bits). Equal fingerprints across a replay and a direct
// training are the audit plane's bit-identity witness.
func ThetaFingerprint(theta []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range theta {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return h.Sum64()
}
