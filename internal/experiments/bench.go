package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"time"

	"blinkml/internal/compute"
	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
	"blinkml/internal/models"
	"blinkml/internal/obs"
	"blinkml/internal/optimize"
	"blinkml/internal/stat"
)

// BenchResult is one machine-readable benchmark row: a seeded BlinkML
// training run on one of the paper's eight workloads. The JSON shape is
// stable so successive files (the repo's BENCH_*.json trajectory) can be
// diffed across commits.
type BenchResult struct {
	// Name is the workload id (e.g. "lr-higgs").
	Name string `json:"name"`
	// Scale is the workload scale the run used.
	Scale string `json:"scale"`
	// Rows and Dim describe the generated dataset.
	Rows int `json:"rows"`
	Dim  int `json:"dim"`
	// NsPerOp is the mean end-to-end BlinkML training time in nanoseconds
	// across Iters repeated runs.
	NsPerOp int64 `json:"ns_per_op"`
	// Iters is how many timed training runs the row aggregates; P50Ms and
	// P99Ms are latency quantiles across them (exact order statistics at
	// this iteration count), so the trajectory tracks tail behavior, not
	// just the mean.
	Iters int     `json:"iters"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// SampleSize is the number of rows the returned model trained on, out
	// of PoolSize.
	SampleSize int `json:"sample_size"`
	PoolSize   int `json:"pool_size"`
	// Epsilon is the model's estimated ε bound; RequestedEpsilon is the
	// contract it was asked for.
	Epsilon          float64 `json:"epsilon"`
	RequestedEpsilon float64 `json:"requested_epsilon"`
	// UsedInitialModel reports the §2.3 early exit (the n₀ model already
	// met the contract).
	UsedInitialModel bool `json:"used_initial_model"`
	// AllocsPerOp and BytesPerOp are per-iteration heap-allocation deltas
	// (runtime.MemStats Mallocs / TotalAlloc across the timed loop, divided
	// by Iters) — the memory-pressure axis of the trajectory.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// KernelResult is one micro-kernel timing row: the hot linalg and
// statistics kernels the training path is built from, so successive
// BENCH_*.json files track kernel regressions separately from end-to-end
// drift.
type KernelResult struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	// P50Ms and P99Ms are per-iteration latency quantiles from the same
	// timed loop NsPerOp averages over.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Parallelism is the compute-pool degree the kernel ran at.
	Parallelism int `json:"parallelism"`
	// AllocsPerOp and BytesPerOp are per-iteration heap-allocation deltas.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// BenchSummary is the envelope written by blinkml-bench -json.
type BenchSummary struct {
	Scale string `json:"scale"`
	Seed  int64  `json:"seed"`
	// Env records the toolchain and machine shape the numbers were taken
	// on, so cross-commit diffs can tell a code regression from a
	// different box.
	Env     obs.Env        `json:"env"`
	Results []BenchResult  `json:"results"`
	Kernels []KernelResult `json:"kernels,omitempty"`
}

// RunBench trains one contract-grade BlinkML model per workload at the
// given scale (ε = 0.05, the paper's 95% operating point) and reports the
// timing/sample-size summary plus micro-kernel timings. Deterministic in
// seed (up to wall-clock noise in the timings themselves).
func RunBench(scale Scale, seed int64) (*BenchSummary, error) {
	sum := &BenchSummary{Scale: scale.String(), Seed: seed, Env: obs.CaptureEnv()}
	for _, w := range append(Workloads(), SparseWorkloads()...) {
		r, err := benchWorkload(w, scale, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: bench %s: %w", w.ID, err)
		}
		sum.Results = append(sum.Results, r)
	}
	ks, err := benchKernels(seed)
	if err != nil {
		return nil, err
	}
	sum.Kernels = ks
	return sum, nil
}

// benchKernels times the statistics-phase building blocks: dense matrix
// products, the symmetric eigensolver, and the two ObservedFisher paths.
func benchKernels(seed int64) ([]KernelResult, error) {
	rng := stat.NewRNG(seed)
	mk := func(r, c int) *linalg.Dense {
		m := linalg.NewDense(r, c)
		for i := range m.Data {
			m.Data[i] = rng.Norm()
		}
		return m
	}
	a256 := mk(256, 256)
	b256 := mk(256, 256)
	sym := mk(256, 256)
	sym.Symmetrize()

	// Statistics-phase fixtures: a trained initial model on each Gram side.
	gram := datagen.Criteo(datagen.Config{Rows: 4000, Dim: 800, Seed: seed})
	gramSample := gram.Subset(dataset.SampleWithoutReplacement(stat.NewRNG(seed+1), gram.Len(), 400))
	cov := datagen.Higgs(datagen.Config{Rows: 4000, Dim: 40, Seed: seed})
	covSample := cov.Subset(dataset.SampleWithoutReplacement(stat.NewRNG(seed+2), cov.Len(), 800))
	spec := models.LogisticRegression{Reg: 0.001}
	gramFit, err := models.Train(spec, gramSample, nil, optimize.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: kernel bench fixture: %w", err)
	}
	covFit, err := models.Train(spec, covSample, nil, optimize.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: kernel bench fixture: %w", err)
	}
	statOpts := core.Options{Epsilon: 0.05}.WithDefaults()

	kernels := []struct {
		name string
		fn   func() error
	}{
		{"matmul-256", func() error { linalg.MatMul(a256, b256); return nil }},
		{"syrk-256", func() error { linalg.Syrk(a256); return nil }},
		{"symeig-256", func() error { _, err := linalg.NewSymEig(sym); return err }},
		{"stats-fisher-gram", func() error {
			_, err := core.ComputeStatistics(spec, gramSample, gramFit.Theta, statOpts)
			return err
		}},
		{"stats-fisher-cov", func() error {
			_, err := core.ComputeStatistics(spec, covSample, covFit.Theta, statOpts)
			return err
		}},
	}
	out := make([]KernelResult, 0, len(kernels))
	for _, k := range kernels {
		ns, lat, allocs, bytes, err := timeKernel(k.fn)
		if err != nil {
			return nil, fmt.Errorf("experiments: kernel bench %s: %w", k.name, err)
		}
		out = append(out, KernelResult{
			Name:        k.name,
			NsPerOp:     ns,
			P50Ms:       lat.Quantile(0.50),
			P99Ms:       lat.Quantile(0.99),
			Parallelism: compute.Parallelism(),
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
		})
	}
	return out, nil
}

// exactQuantileCutoff is the sample count below which quantiles come from
// the raw samples instead of histogram buckets. obs.Histogram's geometric
// base-2 buckets are built for unbounded metric streams; with a handful of
// benchmark iterations every run lands in one or two coarse buckets and the
// interpolated p50 and p99 collapse to the same bucket-boundary value
// across unrelated workloads. Below this cutoff the raw samples fit
// trivially in memory, so order statistics are both exact and free.
const exactQuantileCutoff = 30

// latencySampler collects per-iteration latencies (ms) and reports
// quantiles: exact order statistics while the sample count is small,
// histogram interpolation once the raw set would stop being cheap.
type latencySampler struct {
	raw  []float64
	hist *obs.Histogram
}

func newLatencySampler() *latencySampler {
	return &latencySampler{hist: obs.NewHistogram()}
}

func (s *latencySampler) Observe(ms float64) {
	if len(s.raw) < exactQuantileCutoff {
		s.raw = append(s.raw, ms)
	}
	s.hist.Observe(ms)
}

// Quantile returns the q-th latency quantile: the nearest-rank order
// statistic when all samples are retained, the histogram estimate
// otherwise.
func (s *latencySampler) Quantile(q float64) float64 {
	n := len(s.raw)
	if n == 0 {
		return 0
	}
	if n >= exactQuantileCutoff {
		return s.hist.Quantile(q)
	}
	sorted := make([]float64, n)
	copy(sorted, s.raw)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return sorted[rank]
}

// timeKernel reports the mean wall time of fn, per-iteration latency
// quantiles, and per-iteration allocation deltas: one warm-up call, then as
// many timed iterations as fit in ~300 ms (at least 3). Allocation counts
// come from runtime.MemStats deltas around the whole timed loop — they are
// process-wide (so run benchmarks alone), but Mallocs/TotalAlloc are
// monotonic counters unaffected by GC, which makes the per-op averages
// stable across runs.
func timeKernel(fn func() error) (int64, *latencySampler, int64, int64, error) {
	if err := fn(); err != nil {
		return 0, nil, 0, 0, err
	}
	const budget = 300 * time.Millisecond
	lat := newLatencySampler()
	var iters int
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for elapsed := time.Duration(0); iters < 3 || elapsed < budget; elapsed = time.Since(start) {
		it := time.Now()
		if err := fn(); err != nil {
			return 0, nil, 0, 0, err
		}
		lat.Observe(float64(time.Since(it)) / float64(time.Millisecond))
		iters++
	}
	nsPerOp := time.Since(start).Nanoseconds() / int64(iters)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	allocs := int64(msAfter.Mallocs-msBefore.Mallocs) / int64(iters)
	bytes := int64(msAfter.TotalAlloc-msBefore.TotalAlloc) / int64(iters)
	return nsPerOp, lat, allocs, bytes, nil
}

// benchIters is how many timed training runs one workload row aggregates —
// enough for a meaningful p50 (the p99 saturates to the slowest run at this
// count) while keeping the full small-scale suite in tens of seconds.
const benchIters = 5

func benchWorkload(w Workload, scale Scale, seed int64) (BenchResult, error) {
	ds := w.Data(scale, seed)
	opt := core.Options{
		Epsilon:           0.05,
		Delta:             0.05,
		Seed:              seed,
		InitialSampleSize: initialSampleSize(scale),
		K:                 paramSamples(scale),
	}
	// Every iteration reruns the same seeded training, so the model outputs
	// are identical; only the wall time varies. The sampler turns those
	// repeats into exact tail quantiles (at benchIters runs, raw order
	// statistics — histogram buckets are too coarse at this count).
	lat := newLatencySampler()
	var res *core.Result
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for i := 0; i < benchIters; i++ {
		it := time.Now()
		r, err := core.Train(w.Spec(scale), ds, opt)
		if err != nil {
			return BenchResult{}, err
		}
		lat.Observe(float64(time.Since(it)) / float64(time.Millisecond))
		res = r
	}
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	return BenchResult{
		Name:             w.ID,
		Scale:            scale.String(),
		Rows:             ds.Len(),
		Dim:              ds.Dim,
		NsPerOp:          elapsed.Nanoseconds() / benchIters,
		Iters:            benchIters,
		P50Ms:            lat.Quantile(0.50),
		P99Ms:            lat.Quantile(0.99),
		SampleSize:       res.SampleSize,
		PoolSize:         res.PoolSize,
		Epsilon:          res.EstimatedEpsilon,
		RequestedEpsilon: opt.Epsilon,
		UsedInitialModel: res.UsedInitialModel,
		AllocsPerOp:      int64(msAfter.Mallocs-msBefore.Mallocs) / benchIters,
		BytesPerOp:       int64(msAfter.TotalAlloc-msBefore.TotalAlloc) / benchIters,
	}, nil
}

// WriteJSON emits the summary as indented JSON.
func (s *BenchSummary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
