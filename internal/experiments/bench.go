package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"blinkml/internal/core"
)

// BenchResult is one machine-readable benchmark row: a seeded BlinkML
// training run on one of the paper's eight workloads. The JSON shape is
// stable so successive files (the repo's BENCH_*.json trajectory) can be
// diffed across commits.
type BenchResult struct {
	// Name is the workload id (e.g. "lr-higgs").
	Name string `json:"name"`
	// Scale is the workload scale the run used.
	Scale string `json:"scale"`
	// Rows and Dim describe the generated dataset.
	Rows int `json:"rows"`
	Dim  int `json:"dim"`
	// NsPerOp is the end-to-end BlinkML training time in nanoseconds.
	NsPerOp int64 `json:"ns_per_op"`
	// SampleSize is the number of rows the returned model trained on, out
	// of PoolSize.
	SampleSize int `json:"sample_size"`
	PoolSize   int `json:"pool_size"`
	// Epsilon is the model's estimated ε bound; RequestedEpsilon is the
	// contract it was asked for.
	Epsilon          float64 `json:"epsilon"`
	RequestedEpsilon float64 `json:"requested_epsilon"`
	// UsedInitialModel reports the §2.3 early exit (the n₀ model already
	// met the contract).
	UsedInitialModel bool `json:"used_initial_model"`
}

// BenchSummary is the envelope written by blinkml-bench -json.
type BenchSummary struct {
	Scale   string        `json:"scale"`
	Seed    int64         `json:"seed"`
	Results []BenchResult `json:"results"`
}

// RunBench trains one contract-grade BlinkML model per workload at the
// given scale (ε = 0.05, the paper's 95% operating point) and reports the
// timing/sample-size summary. Deterministic in seed.
func RunBench(scale Scale, seed int64) (*BenchSummary, error) {
	sum := &BenchSummary{Scale: scale.String(), Seed: seed}
	for _, w := range Workloads() {
		r, err := benchWorkload(w, scale, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: bench %s: %w", w.ID, err)
		}
		sum.Results = append(sum.Results, r)
	}
	return sum, nil
}

func benchWorkload(w Workload, scale Scale, seed int64) (BenchResult, error) {
	ds := w.Data(scale, seed)
	opt := core.Options{
		Epsilon:           0.05,
		Delta:             0.05,
		Seed:              seed,
		InitialSampleSize: initialSampleSize(scale),
		K:                 paramSamples(scale),
	}
	start := time.Now()
	res, err := core.Train(w.Spec(scale), ds, opt)
	if err != nil {
		return BenchResult{}, err
	}
	elapsed := time.Since(start)
	return BenchResult{
		Name:             w.ID,
		Scale:            scale.String(),
		Rows:             ds.Len(),
		Dim:              ds.Dim,
		NsPerOp:          elapsed.Nanoseconds(),
		SampleSize:       res.SampleSize,
		PoolSize:         res.PoolSize,
		Epsilon:          res.EstimatedEpsilon,
		RequestedEpsilon: opt.Epsilon,
		UsedInitialModel: res.UsedInitialModel,
	}, nil
}

// WriteJSON emits the summary as indented JSON.
func (s *BenchSummary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
