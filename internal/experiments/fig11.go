package experiments

import (
	"fmt"

	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
	"blinkml/internal/stat"
)

// estimatedSampleSize runs only the front half of the BlinkML pipeline —
// initial model, statistics, Sample Size Estimator — and returns the n the
// searcher picks, which is what Figure 11 plots.
func estimatedSampleSize(spec models.Spec, ds *dataset.Dataset, opt core.Options) (int, error) {
	opt = opt.WithDefaults()
	env := core.NewEnv(ds, opt)
	bigN := env.PoolLen()
	n0 := opt.InitialSampleSize
	if n0 > bigN {
		n0 = bigN
	}
	rng := stat.NewRNG(opt.Seed + 0xF11)
	sample, err := env.Sample(rng, n0)
	if err != nil {
		return 0, err
	}
	fit, err := models.Train(spec, sample, nil, optimize.Options{})
	if err != nil {
		return 0, err
	}
	st, err := core.ComputeStatistics(spec, sample, fit.Theta, opt)
	if err != nil {
		return 0, err
	}
	searcher := core.NewSearcher(spec, fit.Theta, st.Factor, n0, bigN, env.Holdout(), opt.Epsilon, opt.Delta, opt.K, rng)
	return searcher.Search().N, nil
}

// absLin wraps linear regression with the paper's Appendix-C unnormalized
// regression difference (an absolute RMS prediction tolerance). Embedding
// the Spec interface rather than the concrete type hides the ScoreModel
// methods, so the estimators take the generic path that honours Differ.
type absLin struct {
	models.Spec
	scale float64
}

// Diff implements models.Differ.
func (a absLin) Diff(thetaA, thetaB []float64, holdout *dataset.Dataset) float64 {
	return models.AbsoluteRMSDiff(a.Spec, thetaA, thetaB, holdout, a.scale)
}

// RunFig11a regenerates Figure 11a: estimated sample size versus the
// regularization coefficient. Stronger regularization flattens the
// gradient surface (larger H relative to J in the Theorem-1 covariance
// μ/(μ+β)²), so fewer rows are needed — the estimated n falls as β grows.
// As in the paper's Appendix C, the regression difference here is the
// unnormalized RMS prediction gap: the covariance shrinkage is exactly
// what an absolute tolerance feels.
func RunFig11a(scale Scale, seed int64) (*Table, error) {
	rows := rowsAt(scale, 12000, 60000, 200000)
	dim := dimAt(scale, 30, 60, 114)
	ds := datagen.Power(datagen.Config{Rows: rows, Dim: dim, Seed: seed})
	betas := []float64{0, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
	t := &Table{
		Title:   "Figure 11a — regularization coefficient vs estimated sample size (Lin, Power-like)",
		Columns: []string{"Reg", "EstSampleSize"},
		Notes: []string{
			fmt.Sprintf("absolute RMS prediction tolerance ε=0.01, δ=0.05, N=%d", rows),
			"uses the Appendix-C unnormalized regression difference",
		},
	}
	for _, beta := range betas {
		spec := absLin{Spec: models.LinearRegression{Reg: beta}, scale: 1}
		n, err := estimatedSampleSize(spec, ds, core.Options{
			Epsilon:           0.01,
			Seed:              seed,
			InitialSampleSize: initialSampleSize(scale),
			K:                 paramSamples(scale),
		})
		if err != nil {
			return nil, fmt.Errorf("fig11a beta=%v: %w", beta, err)
		}
		t.AddRow(fmt.Sprintf("%.0e", beta), fmt.Sprintf("%d", n))
	}
	return t, nil
}

// fig11bDims is the number-of-parameters axis of Figure 11b.
func fig11bDims(s Scale) []int {
	switch s {
	case Medium:
		return []int{100, 500, 1000, 5000}
	case Large:
		return []int{100, 500, 1000, 5000, 10000, 50000, 100000}
	default:
		return []int{50, 100, 200, 400}
	}
}

// RunFig11b regenerates Figure 11b: estimated sample size versus the
// number of parameters. More parameters mean more directions in which the
// approximate model can disagree, so the estimated n should grow with d.
func RunFig11b(scale Scale, seed int64) (*Table, error) {
	rows := rowsAt(scale, 12000, 60000, 200000)
	t := &Table{
		Title:   "Figure 11b — number of parameters vs estimated sample size (LR, Criteo-like)",
		Columns: []string{"Params", "EstSampleSize"},
		Notes:   []string{"ε=0.05, δ=0.05"},
	}
	for _, d := range fig11bDims(scale) {
		ds := datagen.Criteo(datagen.Config{Rows: rows, Dim: d, Seed: seed})
		n, err := estimatedSampleSize(models.LogisticRegression{Reg: 0.001}, ds, core.Options{
			Epsilon:           0.05,
			Seed:              seed,
			InitialSampleSize: initialSampleSize(scale),
			K:                 paramSamples(scale),
		})
		if err != nil {
			return nil, fmt.Errorf("fig11b d=%d: %w", d, err)
		}
		t.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", n))
	}
	return t, nil
}
