// Package experiments regenerates every table and figure of the paper's
// evaluation (§5, Appendix D): speedups (Fig 5 / Table 4), accuracy
// guarantees (Fig 6 / Table 5), sample-size-estimator comparisons (Fig 7 /
// Tables 6–7), dimension sweeps (Fig 8 / Tables 8–9), statistics-method
// studies (Fig 9), hyperparameter optimization (Fig 10) and model-
// complexity effects (Fig 11). Runners are deterministic in their seeds and
// parameterized by a Scale so the same shapes run in CI seconds or in
// minutes at full laptop scale.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/models"
)

// Scale selects how large the synthetic workloads are. The table shapes
// are identical across scales; only row counts and dimensions change.
type Scale int

const (
	// Small runs in seconds (unit tests, CI).
	Small Scale = iota
	// Medium runs in tens of seconds (go test -bench).
	Medium
	// Large approaches the paper's relative regime (cmd/blinkml-bench).
	Large
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	default:
		return Small, fmt.Errorf("experiments: unknown scale %q (small|medium|large)", s)
	}
}

// Workload is one of the paper's eight (model, dataset) combinations.
type Workload struct {
	ID         string // e.g. "lin-gas"
	ModelName  string // "Lin", "LR", "ME", "PPCA"
	DataName   string // "Gas", ...
	Spec       func(s Scale) models.Spec
	Data       func(s Scale, seed int64) *dataset.Dataset
	Accuracies []float64 // the requested-accuracy axis of Figures 5–6
}

// glmAccuracies is the 80%–99% axis used for Lin/LR/ME.
var glmAccuracies = []float64{0.80, 0.85, 0.90, 0.95, 0.96, 0.97, 0.98, 0.99}

// ppcaAccuracies is the 90%–99.99% axis used for PPCA.
var ppcaAccuracies = []float64{0.90, 0.95, 0.99, 0.995, 0.999, 0.9995, 0.9999}

// rowsAt scales a Small/Medium/Large row count.
func rowsAt(s Scale, small, medium, large int) int {
	switch s {
	case Medium:
		return medium
	case Large:
		return large
	default:
		return small
	}
}

// Workloads returns the paper's eight combinations (Table 2 pairings),
// scaled per DESIGN.md substitution S1.
func Workloads() []Workload {
	const reg = 0.001 // the paper's default L2 coefficient (§5.1)
	return []Workload{
		{
			ID: "lin-gas", ModelName: "Lin", DataName: "Gas",
			Spec: func(Scale) models.Spec { return models.LinearRegression{Reg: reg} },
			Data: func(s Scale, seed int64) *dataset.Dataset {
				return datagen.Gas(datagen.Config{Rows: rowsAt(s, 8000, 150000, 400000), Dim: dimAt(s, 20, 57, 57), Seed: seed})
			},
			Accuracies: glmAccuracies,
		},
		{
			ID: "lin-power", ModelName: "Lin", DataName: "Power",
			Spec: func(Scale) models.Spec { return models.LinearRegression{Reg: reg} },
			Data: func(s Scale, seed int64) *dataset.Dataset {
				return datagen.Power(datagen.Config{Rows: rowsAt(s, 8000, 120000, 300000), Dim: dimAt(s, 30, 114, 114), Seed: seed})
			},
			Accuracies: glmAccuracies,
		},
		{
			ID: "lr-criteo", ModelName: "LR", DataName: "Criteo",
			Spec: func(Scale) models.Spec { return models.LogisticRegression{Reg: reg} },
			Data: func(s Scale, seed int64) *dataset.Dataset {
				return datagen.Criteo(datagen.Config{Rows: rowsAt(s, 10000, 150000, 400000), Dim: dimAt(s, 300, 300, 1000), Seed: seed})
			},
			Accuracies: glmAccuracies,
		},
		{
			ID: "lr-higgs", ModelName: "LR", DataName: "HIGGS",
			Spec: func(Scale) models.Spec { return models.LogisticRegression{Reg: reg} },
			Data: func(s Scale, seed int64) *dataset.Dataset {
				return datagen.Higgs(datagen.Config{Rows: rowsAt(s, 10000, 200000, 500000), Dim: dimAt(s, 15, 28, 28), Seed: seed})
			},
			Accuracies: glmAccuracies,
		},
		{
			ID: "me-mnist", ModelName: "ME", DataName: "MNIST",
			Spec: func(Scale) models.Spec { return models.MaxEntropy{Classes: 10, Reg: reg} },
			Data: func(s Scale, seed int64) *dataset.Dataset {
				return datagen.MNIST(datagen.Config{Rows: rowsAt(s, 6000, 120000, 250000), Dim: dimAt(s, 36, 64, 196), Seed: seed})
			},
			Accuracies: glmAccuracies,
		},
		{
			ID: "me-yelp", ModelName: "ME", DataName: "Yelp",
			Spec: func(Scale) models.Spec { return models.MaxEntropy{Classes: 5, Reg: reg} },
			Data: func(s Scale, seed int64) *dataset.Dataset {
				return datagen.Yelp(datagen.Config{Rows: rowsAt(s, 6000, 80000, 150000), Dim: dimAt(s, 500, 1000, 5000), Seed: seed})
			},
			Accuracies: glmAccuracies,
		},
		{
			ID: "ppca-mnist", ModelName: "PPCA", DataName: "MNIST",
			Spec: func(s Scale) models.Spec { return models.NewPPCA(ppcaFactors(s)) },
			Data: func(s Scale, seed int64) *dataset.Dataset {
				return datagen.MNIST(datagen.Config{Rows: rowsAt(s, 6000, 120000, 250000), Dim: dimAt(s, 36, 64, 196), Seed: seed})
			},
			Accuracies: ppcaAccuracies,
		},
		{
			ID: "ppca-higgs", ModelName: "PPCA", DataName: "HIGGS",
			Spec: func(s Scale) models.Spec { return models.NewPPCA(ppcaFactors(s)) },
			Data: func(s Scale, seed int64) *dataset.Dataset {
				return datagen.Higgs(datagen.Config{Rows: rowsAt(s, 10000, 200000, 500000), Dim: dimAt(s, 15, 28, 28), Seed: seed})
			},
			Accuracies: ppcaAccuracies,
		},
	}
}

func dimAt(s Scale, small, medium, large int) int {
	switch s {
	case Medium:
		return medium
	case Large:
		return large
	default:
		return small
	}
}

func ppcaFactors(s Scale) int {
	switch s {
	case Medium:
		return 8
	case Large:
		return 10 // the paper's q
	default:
		return 4
	}
}

// SparseWorkloads returns high-dimensional sparse variants of the Criteo
// and Yelp pairings: same generators and models, ambient dimension pushed
// to 10k (small) through 100k (large). The per-row activity of both
// generators is dimension-independent (~38 and ~45 stored entries), so
// density drops to a fraction of a percent and the runs exercise the CSR
// sample materialization and sparse statistics kernels end-to-end — shapes
// the dense path cannot touch (a single dense 100k-dim row is 800 KB).
func SparseWorkloads() []Workload {
	const reg = 0.001
	return []Workload{
		{
			ID: "lr-criteo-sparse", ModelName: "LR", DataName: "Criteo",
			Spec: func(Scale) models.Spec { return models.LogisticRegression{Reg: reg} },
			Data: func(s Scale, seed int64) *dataset.Dataset {
				return datagen.Criteo(datagen.Config{Rows: rowsAt(s, 10000, 150000, 400000), Dim: dimAt(s, 10000, 30000, 100000), Seed: seed})
			},
			Accuracies: glmAccuracies,
		},
		{
			ID: "me-yelp-sparse", ModelName: "ME", DataName: "Yelp",
			Spec: func(Scale) models.Spec { return models.MaxEntropy{Classes: 5, Reg: reg} },
			Data: func(s Scale, seed int64) *dataset.Dataset {
				return datagen.Yelp(datagen.Config{Rows: rowsAt(s, 6000, 80000, 150000), Dim: dimAt(s, 10000, 30000, 100000), Seed: seed})
			},
			Accuracies: glmAccuracies,
		},
	}
}

// WorkloadByID looks up a workload by id across the paper's eight
// combinations and the sparse variants.
func WorkloadByID(id string) (Workload, error) {
	for _, w := range Workloads() {
		if w.ID == id {
			return w, nil
		}
	}
	for _, w := range SparseWorkloads() {
		if w.ID == id {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("experiments: unknown workload %q", id)
}

// initialSampleSize returns n₀ per scale (the paper's default is 10K at
// cluster scale).
func initialSampleSize(s Scale) int {
	switch s {
	case Medium:
		return 1000
	case Large:
		return 2000
	default:
		return 300
	}
}

// paramSamples returns k, the Monte-Carlo parameter-sample count.
func paramSamples(s Scale) int {
	switch s {
	case Medium:
		return 100
	case Large:
		return 150
	default:
		return 60
	}
}

// Table is a printable result grid, one per paper table/figure panel.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries caveats (e.g. substitutions) printed under the table.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Fprint writes the aligned table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	fmt.Fprintf(w, "## %s\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(w, "%-*s", widths[i]+2, c)
	}
	fmt.Fprintln(w)
	for i := range t.Columns {
		fmt.Fprintf(w, "%s  ", strings.Repeat("-", widths[i]))
	}
	fmt.Fprintln(w)
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s", widths[i]+2, cell)
			} else {
				fmt.Fprint(w, cell)
			}
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pct(v float64) string      { return fmt.Sprintf("%.2f%%", 100*v) }
func secs(d float64) string     { return fmt.Sprintf("%.3fs", d) }
func ratioStr(v float64) string { return fmt.Sprintf("%.2fx", v) }
