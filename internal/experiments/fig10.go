package experiments

import (
	"fmt"
	"math"
	"time"

	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/stat"
)

// RunFig10 regenerates Figure 10: random-search hyperparameter optimization
// with BlinkML's 95%-accurate models versus full-model training. Both sides
// walk the same sequence of (feature subset, regularization coefficient)
// configurations; the table reports cumulative time and best test accuracy
// after each step. The paper's headline — BlinkML evaluates orders of
// magnitude more configurations per unit time — shows up as the cumulative-
// time ratio.
func RunFig10(scale Scale, seed int64, steps int) (*Table, error) {
	if steps <= 0 {
		steps = 8
	}
	// The pool must be large enough that full training dwarfs the estimator
	// overhead — that asymmetry is the entire point of the figure.
	rows := rowsAt(scale, 40000, 100000, 250000)
	dim := dimAt(scale, 300, 1000, 5000)
	ds := datagen.Criteo(datagen.Config{Rows: rows, Dim: dim, Seed: seed})
	base := core.Options{
		Epsilon:           0.05,
		Delta:             0.05,
		Seed:              seed,
		InitialSampleSize: initialSampleSize(scale),
		K:                 paramSamples(scale),
		TestFraction:      0.15,
	}
	rng := stat.NewRNG(seed + 0xF10)

	t := &Table{
		Title:   "Figure 10 — hyperparameter optimization: BlinkML (95% models) vs full training",
		Columns: []string{"Step", "Features", "Reg", "BlinkTime(cum)", "BlinkBestAcc", "FullTime(cum)", "FullBestAcc"},
		Notes:   []string{"both sides evaluate the identical random configuration sequence"},
	}
	var blinkCum, fullCum time.Duration
	blinkBest, fullBest := 0.0, 0.0
	for step := 1; step <= steps; step++ {
		// Random config: keep a random feature fraction, log-uniform reg.
		keepFrac := 0.3 + 0.7*rng.Float64()
		reg := math.Pow(10, -5+5*rng.Float64())
		masked := maskFeatures(ds, keepFrac, rng.Split())
		spec := models.LogisticRegression{Reg: reg}
		env := core.NewEnv(masked, base)

		start := time.Now()
		approx, err := env.TrainApprox(spec, base)
		if err != nil {
			return nil, fmt.Errorf("fig10 step %d blinkml: %w", step, err)
		}
		blinkCum += time.Since(start)
		if acc := models.Accuracy(spec, approx.Theta, env.Test()); acc > blinkBest {
			blinkBest = acc
		}

		start = time.Now()
		full, err := env.TrainFull(spec, base.Optimizer)
		if err != nil {
			return nil, fmt.Errorf("fig10 step %d full: %w", step, err)
		}
		fullCum += time.Since(start)
		if acc := models.Accuracy(spec, full.Theta, env.Test()); acc > fullBest {
			fullBest = acc
		}

		t.AddRow(
			fmt.Sprintf("%d", step),
			fmt.Sprintf("%.0f%%", 100*keepFrac),
			fmt.Sprintf("%.1e", reg),
			secs(blinkCum.Seconds()),
			pct(blinkBest),
			secs(fullCum.Seconds()),
			pct(fullBest),
		)
	}
	return t, nil
}

// maskFeatures zeroes out a random (1−keepFrac) subset of feature columns,
// preserving the ambient dimension so models stay comparable. Sparse rows
// stay sparse.
func maskFeatures(ds *dataset.Dataset, keepFrac float64, rng *stat.RNG) *dataset.Dataset {
	keep := make([]bool, ds.Dim)
	for j := range keep {
		keep[j] = rng.Float64() < keepFrac
	}
	keep[0] = true // never drop the bias feature
	out := &dataset.Dataset{
		Dim:        ds.Dim,
		Task:       ds.Task,
		NumClasses: ds.NumClasses,
		Name:       ds.Name + "-masked",
		Y:          ds.Y,
	}
	out.X = make([]dataset.Row, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		switch r := ds.X[i].(type) {
		case *dataset.SparseRow:
			idx := make([]int32, 0, len(r.Idx))
			val := make([]float64, 0, len(r.Val))
			for k, j := range r.Idx {
				if keep[j] {
					idx = append(idx, j)
					val = append(val, r.Val[k])
				}
			}
			out.X[i] = &dataset.SparseRow{N: ds.Dim, Idx: idx, Val: val}
		default:
			row := make(dataset.DenseRow, ds.Dim)
			r.ForEach(func(j int, v float64) {
				if keep[j] {
					row[j] = v
				}
			})
			out.X[i] = row
		}
	}
	return out
}
