package experiments

import (
	"fmt"
	"sort"

	"blinkml/internal/core"
	"blinkml/internal/stat"
)

// RunFig5 regenerates one panel of Figure 5 / Table 4: BlinkML's training
// time, speedup, and time saving versus full training across requested
// accuracies, for one (model, dataset) combination.
func RunFig5(w Workload, scale Scale, reps int, seed int64) (*Table, error) {
	if reps <= 0 {
		reps = 3
	}
	spec := w.Spec(scale)
	ds := w.Data(scale, seed)
	base := core.Options{
		Epsilon:           0.5, // placeholder; set per accuracy below
		Delta:             0.05,
		Seed:              seed,
		InitialSampleSize: initialSampleSize(scale),
		K:                 paramSamples(scale),
	}
	env := core.NewEnv(ds, base)
	full, err := env.TrainFull(spec, base.Optimizer)
	if err != nil {
		return nil, fmt.Errorf("fig5 %s: %w", w.ID, err)
	}
	fullSecs := full.Time.Seconds()

	t := &Table{
		Title:   fmt.Sprintf("Figure 5 / Table 4 — %s on %s: training time savings (full training: %s)", w.ModelName, w.DataName, secs(fullSecs)),
		Columns: []string{"ReqAcc", "BlinkML", "Speedup", "Saving", "SampleSize", "Initial?"},
		Notes:   []string{fmt.Sprintf("N=%d pool rows, n0=%d, k=%d, δ=0.05, %d reps", env.PoolLen(), base.InitialSampleSize, base.K, reps)},
	}
	for _, acc := range w.Accuracies {
		eps := 1 - acc
		var times []float64
		var sizes []int
		usedInitial := 0
		for r := 0; r < reps; r++ {
			o := base
			o.Epsilon = eps
			o.Seed = seed + int64(1000*(r+1))
			res, err := env.TrainApprox(spec, o)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s acc=%v rep=%d: %w", w.ID, acc, r, err)
			}
			times = append(times, res.Diag.Total().Seconds())
			sizes = append(sizes, res.SampleSize)
			if res.UsedInitialModel {
				usedInitial++
			}
		}
		mt := stat.Mean(times)
		sort.Ints(sizes)
		speedup := fullSecs / mt
		t.AddRow(
			pct(acc),
			secs(mt),
			ratioStr(speedup),
			pct(1-mt/fullSecs),
			fmt.Sprintf("%d", sizes[len(sizes)/2]),
			fmt.Sprintf("%d/%d", usedInitial, reps),
		)
	}
	return t, nil
}
