package experiments

import (
	"fmt"
	"time"

	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
	"blinkml/internal/stat"
)

// fig9aSampleSizes is the sample-size axis of Figure 9a per scale.
func fig9aSampleSizes(s Scale) []int {
	switch s {
	case Medium:
		return []int{100, 500, 1000, 5000, 10000}
	case Large:
		return []int{100, 500, 1000, 5000, 10000, 50000}
	default:
		return []int{100, 300, 1000, 3000}
	}
}

// RunFig9a regenerates Figure 9a: the ratio of estimated to actual
// parameter variance for ClosedForm, InverseGradients, and ObservedFisher
// as the sample size grows ((Lin, Power) in the paper). The actual variance
// comes from Monte-Carlo retraining on independent samples; ratios near or
// above 1 mean the estimate is tight or conservative.
func RunFig9a(scale Scale, seed int64) (*Table, error) {
	dim := dimAt(scale, 12, 20, 30)
	pool := datagen.Power(datagen.Config{Rows: rowsAt(scale, 20000, 80000, 200000), Dim: dim, Seed: seed})
	spec := models.LinearRegression{Reg: 0.001}
	trials := 25
	rng := stat.NewRNG(seed + 0xF16A)

	t := &Table{
		Title:   "Figure 9a — estimated/actual parameter variance vs sample size (Lin, Power-like)",
		Columns: []string{"SampleSize", "ClosedForm", "InverseGradients", "ObservedFisher"},
		Notes:   []string{fmt.Sprintf("actual variance from %d Monte-Carlo retrainings; ratio averaged over %d coordinates", trials, dim)},
	}
	for _, n := range fig9aSampleSizes(scale) {
		if n >= pool.Len() {
			continue
		}
		// Monte-Carlo actual variance per coordinate.
		thetas := make([][]float64, trials)
		for tr := 0; tr < trials; tr++ {
			idx := dataset.SampleWithoutReplacement(rng, pool.Len(), n)
			res, err := models.Train(spec, pool.Subset(idx), nil, optimize.Options{GradTol: 1e-9})
			if err != nil {
				return nil, fmt.Errorf("fig9a n=%d trial=%d: %w", n, tr, err)
			}
			thetas[tr] = res.Theta
		}
		actual := make([]float64, dim)
		col := make([]float64, trials)
		for j := 0; j < dim; j++ {
			for tr := range thetas {
				col[tr] = thetas[tr][j]
			}
			actual[j] = stat.Variance(col)
		}
		// Estimated variance per method, from statistics on one sample.
		idx := dataset.SampleWithoutReplacement(rng, pool.Len(), n)
		sample := pool.Subset(idx)
		fit, err := models.Train(spec, sample, nil, optimize.Options{GradTol: 1e-9})
		if err != nil {
			return nil, err
		}
		alpha := core.Alpha(n, pool.Len())
		row := []string{fmt.Sprintf("%d", n)}
		for _, m := range []core.Method{core.ClosedForm, core.InverseGradients, core.ObservedFisher} {
			st, err := core.ComputeStatistics(spec, sample, fit.Theta, core.Options{Epsilon: 0.1, Method: m})
			if err != nil {
				return nil, fmt.Errorf("fig9a n=%d %v: %w", n, m, err)
			}
			cov := core.Covariance(st.Factor)
			var ratioSum float64
			for j := 0; j < dim; j++ {
				ratioSum += alpha * cov.At(j, j) / actual[j]
			}
			row = append(row, fmt.Sprintf("%.2f", ratioSum/float64(dim)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// RunFig9b regenerates Figure 9b: InverseGradients vs ObservedFisher
// runtime and covariance accuracy on a low-dimensional combo (LR, HIGGS)
// and a high-dimensional one (ME, MNIST). Accuracy is the paper's averaged
// Frobenius distance (1/p²)·‖C_true − C_est‖_F against the ClosedForm
// covariance as ground truth.
func RunFig9b(scale Scale, seed int64) (*Table, error) {
	type combo struct {
		name   string
		spec   models.Spec
		data   *dataset.Dataset
		sample int
	}
	combos := []combo{
		{
			name:   "LR, HIGGS",
			spec:   models.LogisticRegression{Reg: 0.001},
			data:   datagen.Higgs(datagen.Config{Rows: rowsAt(scale, 4000, 20000, 60000), Dim: dimAt(scale, 15, 28, 28), Seed: seed}),
			sample: rowsAt(scale, 500, 2000, 5000),
		},
		{
			name:   "ME, MNIST",
			spec:   models.MaxEntropy{Classes: 10, Reg: 0.001},
			data:   datagen.MNIST(datagen.Config{Rows: rowsAt(scale, 3000, 10000, 20000), Dim: dimAt(scale, 25, 64, 196), Seed: seed}),
			sample: rowsAt(scale, 300, 600, 1000),
		},
	}
	t := &Table{
		Title:   "Figure 9b — InverseGradients (IG) vs ObservedFisher (OF)",
		Columns: []string{"Model,Data", "Params", "IG time", "OF time", "IG ‖·‖F", "OF ‖·‖F"},
		Notes:   []string{"accuracy = (1/p²)·Frobenius distance to the ClosedForm covariance"},
	}
	for _, c := range combos {
		rng := stat.NewRNG(seed + 0xF16B)
		idx := dataset.SampleWithoutReplacement(rng, c.data.Len(), c.sample)
		sample := c.data.Subset(idx)
		fit, err := models.Train(c.spec, sample, nil, optimize.Options{})
		if err != nil {
			return nil, fmt.Errorf("fig9b %s: %w", c.name, err)
		}
		ref, err := core.ComputeStatistics(c.spec, sample, fit.Theta, core.Options{Epsilon: 0.1, Method: core.ClosedForm})
		if err != nil {
			return nil, fmt.Errorf("fig9b %s closed form: %w", c.name, err)
		}
		refCov := core.Covariance(ref.Factor)
		p := float64(len(fit.Theta))

		var times [2]time.Duration
		var dists [2]float64
		for i, m := range []core.Method{core.InverseGradients, core.ObservedFisher} {
			start := time.Now()
			st, err := core.ComputeStatistics(c.spec, sample, fit.Theta, core.Options{Epsilon: 0.1, Method: m})
			if err != nil {
				return nil, fmt.Errorf("fig9b %s %v: %w", c.name, m, err)
			}
			times[i] = time.Since(start)
			dists[i] = linalg.FrobeniusDistance(core.Covariance(st.Factor), refCov) / (p * p)
		}
		t.AddRow(
			c.name,
			fmt.Sprintf("%d", len(fit.Theta)),
			secs(times[0].Seconds()),
			secs(times[1].Seconds()),
			fmt.Sprintf("%.2e", dists[0]),
			fmt.Sprintf("%.2e", dists[1]),
		)
	}
	return t, nil
}
