package experiments

import (
	"fmt"
	"io"
)

// Runner executes one experiment and returns its tables.
type Runner struct {
	ID   string
	Desc string
	Run  func(scale Scale, seed int64) ([]*Table, error)
}

// Runners enumerates every reproducible figure/table in the paper's
// evaluation. IDs match DESIGN.md's per-experiment index.
func Runners() []Runner {
	rs := []Runner{}
	for _, w := range Workloads() {
		w := w
		rs = append(rs, Runner{
			ID:   "fig5-" + w.ID,
			Desc: fmt.Sprintf("Figure 5 / Table 4 panel (%s, %s): speedups vs requested accuracy", w.ModelName, w.DataName),
			Run: func(scale Scale, seed int64) ([]*Table, error) {
				t, err := RunFig5(w, scale, repsFor(scale, 3, 5, 10), seed)
				return []*Table{t}, err
			},
		})
		rs = append(rs, Runner{
			ID:   "fig6-" + w.ID,
			Desc: fmt.Sprintf("Figure 6 / Table 5 panel (%s, %s): requested vs actual accuracy", w.ModelName, w.DataName),
			Run: func(scale Scale, seed int64) ([]*Table, error) {
				t, err := RunFig6(w, scale, repsFor(scale, 8, 15, 20), seed)
				return []*Table{t}, err
			},
		})
	}
	for _, id := range []string{"lin-power", "lr-criteo"} {
		id := id
		rs = append(rs, Runner{
			ID:   "fig7-" + id,
			Desc: fmt.Sprintf("Figure 7 / Tables 6-7 (%s): sample-size strategies", id),
			Run: func(scale Scale, seed int64) ([]*Table, error) {
				w, err := WorkloadByID(id)
				if err != nil {
					return nil, err
				}
				a, b, err := RunFig7(w, scale, seed)
				return []*Table{a, b}, err
			},
		})
	}
	rs = append(rs,
		Runner{
			ID:   "fig8",
			Desc: "Figure 8 / Tables 8-9: dimension sweep (overhead, gen. error, iterations)",
			Run: func(scale Scale, seed int64) ([]*Table, error) {
				a, b, c, err := RunFig8(scale, seed)
				return []*Table{a, b, c}, err
			},
		},
		Runner{
			ID:   "fig9a",
			Desc: "Figure 9a: estimated/actual variance ratio per statistics method",
			Run: func(scale Scale, seed int64) ([]*Table, error) {
				t, err := RunFig9a(scale, seed)
				return []*Table{t}, err
			},
		},
		Runner{
			ID:   "fig9b",
			Desc: "Figure 9b: InverseGradients vs ObservedFisher cost/accuracy",
			Run: func(scale Scale, seed int64) ([]*Table, error) {
				t, err := RunFig9b(scale, seed)
				return []*Table{t}, err
			},
		},
		Runner{
			ID:   "fig10",
			Desc: "Figure 10: hyperparameter optimization",
			Run: func(scale Scale, seed int64) ([]*Table, error) {
				t, err := RunFig10(scale, seed, repsFor(scale, 8, 15, 30))
				return []*Table{t}, err
			},
		},
		Runner{
			ID:   "fig11a",
			Desc: "Figure 11a: regularization vs estimated sample size",
			Run: func(scale Scale, seed int64) ([]*Table, error) {
				t, err := RunFig11a(scale, seed)
				return []*Table{t}, err
			},
		},
		Runner{
			ID:   "fig11b",
			Desc: "Figure 11b: number of parameters vs estimated sample size",
			Run: func(scale Scale, seed int64) ([]*Table, error) {
				t, err := RunFig11b(scale, seed)
				return []*Table{t}, err
			},
		},
	)
	return rs
}

func repsFor(s Scale, small, medium, large int) int {
	switch s {
	case Medium:
		return medium
	case Large:
		return large
	default:
		return small
	}
}

// RunnerByID finds a runner.
func RunnerByID(id string) (Runner, error) {
	for _, r := range Runners() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAll executes every experiment at the given scale and streams the
// tables to w.
func RunAll(scale Scale, seed int64, w io.Writer) error {
	for _, r := range Runners() {
		fmt.Fprintf(w, "=== %s: %s\n\n", r.ID, r.Desc)
		tables, err := r.Run(scale, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		for _, t := range tables {
			t.Fprint(w)
		}
	}
	return nil
}
