package experiments

import (
	"fmt"

	"blinkml/internal/core"
	"blinkml/internal/models"
	"blinkml/internal/stat"
)

// RunFig6 regenerates one panel of Figure 6 / Table 5: requested versus
// actual model accuracy. The actual accuracy of an approximate model is
// 1 − v(m_n, m_N) measured on the shared holdout against a truly trained
// full model; the paper's guarantee is that the 5th percentile across runs
// stays above the requested accuracy (δ = 0.05).
func RunFig6(w Workload, scale Scale, reps int, seed int64) (*Table, error) {
	if reps <= 0 {
		reps = 10
	}
	spec := w.Spec(scale)
	ds := w.Data(scale, seed)
	base := core.Options{
		Epsilon:           0.5,
		Delta:             0.05,
		Seed:              seed,
		InitialSampleSize: initialSampleSize(scale),
		K:                 paramSamples(scale),
	}
	env := core.NewEnv(ds, base)
	full, err := env.TrainFull(spec, base.Optimizer)
	if err != nil {
		return nil, fmt.Errorf("fig6 %s: %w", w.ID, err)
	}

	t := &Table{
		Title:   fmt.Sprintf("Figure 6 / Table 5 — %s on %s: requested vs actual accuracy", w.ModelName, w.DataName),
		Columns: []string{"ReqAcc", "ActualMean", "Actual5th", "Actual95th", "5th>=Req"},
		Notes:   []string{fmt.Sprintf("%d reps per accuracy; actual = 1 − v(m_n, m_N) on %d holdout rows", reps, env.Holdout().Len())},
	}
	for _, acc := range w.Accuracies {
		eps := 1 - acc
		actuals := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			o := base
			o.Epsilon = eps
			o.Seed = seed + int64(777*(r+1))
			res, err := env.TrainApprox(spec, o)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s acc=%v rep=%d: %w", w.ID, acc, r, err)
			}
			v := models.Diff(spec, res.Theta, full.Theta, env.Holdout())
			actuals = append(actuals, 1-v)
		}
		p5 := stat.Quantile(actuals, 0.05)
		ok := "yes"
		if p5 < acc {
			ok = "NO"
		}
		t.AddRow(pct(acc), pct(stat.Mean(actuals)), pct(p5), pct(stat.Quantile(actuals, 0.95)), ok)
	}
	return t, nil
}
