package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestWorkloadRegistry(t *testing.T) {
	ws := Workloads()
	if len(ws) != 8 {
		t.Fatalf("expected the paper's 8 combinations, got %d", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.ID] {
			t.Fatalf("duplicate workload %q", w.ID)
		}
		seen[w.ID] = true
		ds := w.Data(Small, 1)
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: invalid dataset: %v", w.ID, err)
		}
		if len(w.Accuracies) == 0 {
			t.Fatalf("%s: no accuracy axis", w.ID)
		}
	}
	if _, err := WorkloadByID("lr-criteo"); err != nil {
		t.Fatal(err)
	}
	if _, err := WorkloadByID("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestParseScale(t *testing.T) {
	for _, s := range []Scale{Small, Medium, Large} {
		got, err := ParseScale(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip failed for %v", s)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow("1", "2")
	s := tab.String()
	for _, want := range []string{"## T", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

// TestBenchWorkloadJSON runs one workload through the -json benchmark path
// and checks the summary row is complete and round-trips through JSON.
func TestBenchWorkloadJSON(t *testing.T) {
	w, err := WorkloadByID("lr-higgs")
	if err != nil {
		t.Fatal(err)
	}
	r, err := benchWorkload(w, Small, 3)
	if err != nil {
		t.Fatalf("bench: %v", err)
	}
	if r.Name != "lr-higgs" || r.Scale != "small" || r.NsPerOp <= 0 {
		t.Fatalf("bench row %+v", r)
	}
	if r.SampleSize <= 0 || r.SampleSize > r.PoolSize || r.Epsilon <= 0 {
		t.Fatalf("bench row has bad sample/epsilon fields: %+v", r)
	}
	if r.Iters != benchIters || r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
		t.Fatalf("bench row has bad tail-latency fields: %+v", r)
	}
	sum := &BenchSummary{Scale: "small", Seed: 3, Results: []BenchResult{r}}
	var buf strings.Builder
	if err := sum.WriteJSON(&buf); err != nil {
		t.Fatalf("write json: %v", err)
	}
	for _, want := range []string{`"name": "lr-higgs"`, `"ns_per_op"`, `"p50_ms"`, `"p99_ms"`, `"sample_size"`, `"epsilon"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("json summary missing %s:\n%s", want, buf.String())
		}
	}
}

// shortAccuracies trims a workload's accuracy axis so smoke tests stay fast.
func shortWorkload(t *testing.T, id string, accs []float64) Workload {
	t.Helper()
	w, err := WorkloadByID(id)
	if err != nil {
		t.Fatal(err)
	}
	w.Accuracies = accs
	return w
}

func TestRunFig5Smoke(t *testing.T) {
	w := shortWorkload(t, "lr-higgs", []float64{0.80, 0.95})
	tab, err := RunFig5(w, Small, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows=%d want 2", len(tab.Rows))
	}
	if len(tab.Columns) != len(tab.Rows[0]) {
		t.Fatal("column/row arity mismatch")
	}
}

func TestRunFig6GuaranteeHolds(t *testing.T) {
	w := shortWorkload(t, "lr-higgs", []float64{0.90, 0.95})
	tab, err := RunFig6(w, Small, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "yes" {
			t.Errorf("guarantee violated in row %v", row)
		}
	}
}

func TestRunFig7Smoke(t *testing.T) {
	w, err := WorkloadByID("lin-power")
	if err != nil {
		t.Fatal(err)
	}
	eff, effc, err := RunFig7(w, Small, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Rows) != len(fig7Accuracies) || len(effc.Rows) != len(fig7Accuracies) {
		t.Fatalf("row counts %d/%d want %d", len(eff.Rows), len(effc.Rows), len(fig7Accuracies))
	}
}

func TestRunFig8Smoke(t *testing.T) {
	overhead, genErr, iters, err := RunFig8(Small, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(fig8Dims(Small))
	if len(overhead.Rows) != wantRows || len(genErr.Rows) != wantRows || len(iters.Rows) != wantRows {
		t.Fatal("dimension sweep incomplete")
	}
	// Lemma 1's bound must hold in every row.
	for _, row := range genErr.Rows {
		if row[len(row)-1] != "yes" {
			t.Errorf("generalization bound violated: %v", row)
		}
	}
}

func TestRunFig9aRatiosSane(t *testing.T) {
	tab, err := RunFig9a(Small, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Ratios should be within a loose [0.3, 3] band (near 1, possibly
	// conservative), tightest at the largest sample size.
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("unparseable ratio %q", cell)
			}
			if v < 0.3 || v > 3 {
				t.Errorf("variance ratio %v far from 1 (row %v)", v, row)
			}
		}
	}
}

func TestRunFig9bObservedFisherCheaperAtHighDim(t *testing.T) {
	tab, err := RunFig9b(Small, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	// On the high-dimensional combo (row 1), OF must not be slower than IG:
	// that asymmetry is the point of the figure.
	igT := parseSecs(t, tab.Rows[1][2])
	ofT := parseSecs(t, tab.Rows[1][3])
	if ofT > igT {
		t.Errorf("ObservedFisher (%v) slower than InverseGradients (%v) at high dim", ofT, igT)
	}
}

func parseSecs(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
	if err != nil {
		t.Fatalf("unparseable seconds %q", s)
	}
	return v
}

func TestRunFig10Smoke(t *testing.T) {
	tab, err := RunFig10(Small, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows=%d want 3", len(tab.Rows))
	}
	// Cumulative BlinkML time must be below cumulative full time by the end.
	last := tab.Rows[len(tab.Rows)-1]
	if parseSecs(t, last[3]) >= parseSecs(t, last[5]) {
		t.Errorf("BlinkML (%s) not faster than full training (%s) over the search", last[3], last[5])
	}
}

func TestRunFig11aRegularizationShrinksSample(t *testing.T) {
	tab, err := RunFig11a(Small, 8)
	if err != nil {
		t.Fatal(err)
	}
	first := parseInt(t, tab.Rows[0][1])                 // β = 0
	lastRow := parseInt(t, tab.Rows[len(tab.Rows)-1][1]) // β = 10
	if lastRow > first {
		t.Errorf("estimated n grew with regularization: %d (β=0) → %d (β=10)", first, lastRow)
	}
}

func TestRunFig11bParamsGrowSample(t *testing.T) {
	tab, err := RunFig11b(Small, 9)
	if err != nil {
		t.Fatal(err)
	}
	first := parseInt(t, tab.Rows[0][1])
	last := parseInt(t, tab.Rows[len(tab.Rows)-1][1])
	if last < first {
		t.Errorf("estimated n shrank as parameters grew: %d → %d", first, last)
	}
}

func parseInt(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("unparseable int %q", s)
	}
	return v
}

func TestRunnersRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range Runners() {
		if ids[r.ID] {
			t.Fatalf("duplicate runner %q", r.ID)
		}
		ids[r.ID] = true
	}
	// 8 fig5 panels + 8 fig6 panels + 2 fig7 + fig8 + fig9a + fig9b + fig10
	// + fig11a + fig11b = 24.
	if len(ids) != 24 {
		t.Fatalf("runner count %d want 24", len(ids))
	}
	if _, err := RunnerByID("fig8"); err != nil {
		t.Fatal(err)
	}
	if _, err := RunnerByID("nope"); err == nil {
		t.Fatal("unknown runner accepted")
	}
}
