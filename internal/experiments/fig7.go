package experiments

import (
	"fmt"

	"blinkml/internal/baselines"
	"blinkml/internal/core"
	"blinkml/internal/models"
)

// fig7Accuracies is the requested-accuracy axis of Figure 7.
var fig7Accuracies = []float64{0.80, 0.85, 0.90, 0.95, 0.96, 0.97, 0.98, 0.99}

// RunFig7 regenerates Figure 7 / Tables 6–7 for one workload: the Sample
// Size Estimator against FixedRatio (1% sample), RelativeRatio
// ((1−ε)·10%), and IncEstimator (grow n until the accuracy estimate
// certifies ε). The effectiveness table reports the actual accuracy each
// strategy delivers; the efficiency table reports runtimes, including
// BlinkML's pure training time (total minus estimator overhead).
func RunFig7(w Workload, scale Scale, seed int64) (effectiveness, efficiency *Table, err error) {
	spec := w.Spec(scale)
	ds := w.Data(scale, seed)
	base := core.Options{
		Epsilon:           0.5,
		Delta:             0.05,
		Seed:              seed,
		InitialSampleSize: initialSampleSize(scale),
		K:                 paramSamples(scale),
	}
	env := core.NewEnv(ds, base)
	full, err := env.TrainFull(spec, base.Optimizer)
	if err != nil {
		return nil, nil, fmt.Errorf("fig7 %s: %w", w.ID, err)
	}
	incStep := initialSampleSize(scale)

	effectiveness = &Table{
		Title:   fmt.Sprintf("Figure 7a / Table 6 — %s on %s: actual accuracy by sample-size strategy", w.ModelName, w.DataName),
		Columns: []string{"ReqAcc", "FixedRatio", "RelativeRatio", "IncEstimator", "BlinkML"},
	}
	efficiency = &Table{
		Title:   fmt.Sprintf("Figure 7b / Table 7 — %s on %s: runtime by sample-size strategy", w.ModelName, w.DataName),
		Columns: []string{"ReqAcc", "FixedRatio", "RelativeRatio", "IncEstimator", "BlinkML", "BlinkML-pure-train"},
		Notes:   []string{fmt.Sprintf("IncEstimator step=%d·k²; pure train = initial + final training time", incStep)},
	}

	actualAcc := func(theta []float64) string {
		return pct(1 - models.Diff(spec, theta, full.Theta, env.Holdout()))
	}
	for _, acc := range fig7Accuracies {
		eps := 1 - acc
		o := base
		o.Epsilon = eps

		fixed, err := baselines.FixedRatio(env, spec, 0.01, seed+1, o.Optimizer)
		if err != nil {
			return nil, nil, fmt.Errorf("fig7 fixed: %w", err)
		}
		rel, err := baselines.RelativeRatio(env, spec, eps, seed+2, o.Optimizer)
		if err != nil {
			return nil, nil, fmt.Errorf("fig7 relative: %w", err)
		}
		inc, err := baselines.IncEstimator(env, spec, o, incStep)
		if err != nil {
			return nil, nil, fmt.Errorf("fig7 inc: %w", err)
		}
		blink, err := env.TrainApprox(spec, o)
		if err != nil {
			return nil, nil, fmt.Errorf("fig7 blinkml: %w", err)
		}

		effectiveness.AddRow(pct(acc), actualAcc(fixed.Theta), actualAcc(rel.Theta), actualAcc(inc.Theta), actualAcc(blink.Theta))
		pure := blink.Diag.InitialTrain + blink.Diag.FinalTrain
		efficiency.AddRow(
			pct(acc),
			secs(fixed.Time.Seconds()),
			secs(rel.Time.Seconds()),
			secs(inc.Time.Seconds()),
			secs(blink.Diag.Total().Seconds()),
			secs(pure.Seconds()),
		)
	}
	return effectiveness, efficiency, nil
}
