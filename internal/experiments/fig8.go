package experiments

import (
	"fmt"

	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/models"
)

// fig8Dims returns the number-of-features axis of Figure 8 per scale
// (the paper sweeps 100 → 998K on Criteo; rows stay sparse so the axis is
// CLI-scalable).
func fig8Dims(s Scale) []int {
	switch s {
	case Medium:
		return []int{100, 500, 1000, 5000}
	case Large:
		return []int{100, 500, 1000, 5000, 10000, 50000, 100000}
	default:
		return []int{50, 100, 200, 400}
	}
}

// RunFig8 regenerates Figure 8 / Tables 8–9: for LR on a Criteo-like
// workload swept over the number of features it reports (a) BlinkML's
// runtime breakdown vs full training, (b) generalization errors with the
// Lemma-1 predicted bound, and (c) optimizer iteration counts.
func RunFig8(scale Scale, seed int64) (overhead, genErr, iters *Table, err error) {
	rows := rowsAt(scale, 10000, 40000, 100000)
	spec := models.LogisticRegression{Reg: 0.001}
	base := core.Options{
		Epsilon:           0.05, // the paper trains 95%-accurate models here
		Delta:             0.05,
		Seed:              seed,
		InitialSampleSize: initialSampleSize(scale),
		K:                 paramSamples(scale),
		TestFraction:      0.15,
	}

	overhead = &Table{
		Title:   "Figure 8a / Table 8 — runtime breakdown vs number of features (LR, Criteo-like)",
		Columns: []string{"Features", "InitTrain", "Statistics", "SizeSearch", "FinalTrain", "BlinkML", "Full", "Ratio"},
	}
	genErr = &Table{
		Title:   "Figure 8b / Table 9 — generalization error vs number of features",
		Columns: []string{"Features", "FullGenErr", "BlinkMLGenErr", "PredictedBound", "BoundHolds"},
		Notes:   []string{"PredictedBound = εg + ε − εg·ε (Lemma 1) with ε = 0.05"},
	}
	iters = &Table{
		Title:   "Figure 8c / Table 9 — optimizer iterations vs number of features",
		Columns: []string{"Features", "Full", "BlinkML"},
	}

	for _, d := range fig8Dims(scale) {
		ds := datagen.Criteo(datagen.Config{Rows: rows, Dim: d, Seed: seed})
		env := core.NewEnv(ds, base)
		full, err := env.TrainFull(spec, base.Optimizer)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("fig8 d=%d full: %w", d, err)
		}
		res, err := env.TrainApprox(spec, base)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("fig8 d=%d blinkml: %w", d, err)
		}
		dg := res.Diag
		blinkSecs := dg.Total().Seconds()
		overhead.AddRow(
			fmt.Sprintf("%d", d),
			secs(dg.InitialTrain.Seconds()),
			secs(dg.Statistics.Seconds()),
			secs(dg.SampleSearch.Seconds()),
			secs(dg.FinalTrain.Seconds()),
			secs(blinkSecs),
			secs(full.Time.Seconds()),
			pct(blinkSecs/full.Time.Seconds()),
		)

		fullGE := models.GeneralizationError(spec, full.Theta, env.Test())
		blinkGE := models.GeneralizationError(spec, res.Theta, env.Test())
		bound := models.GeneralizationBound(blinkGE, base.Epsilon)
		holds := "yes"
		if fullGE > bound {
			holds = "NO"
		}
		genErr.AddRow(fmt.Sprintf("%d", d), pct(fullGE), pct(blinkGE), pct(bound), holds)

		blinkIters := dg.FinalIters
		if res.UsedInitialModel {
			blinkIters = dg.InitialIters
		}
		iters.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", full.Iters), fmt.Sprintf("%d", blinkIters))
	}
	return overhead, genErr, iters, nil
}
