module blinkml

go 1.24
