// Package blinkml is a Go implementation of BlinkML (Park, Qing, Shen,
// Mozafari — SIGMOD 2019): fast, quality-guaranteed training for maximum-
// likelihood models. Instead of training on the full dataset, BlinkML
// trains on an automatically sized uniform sample and guarantees — with
// probability at least 1−δ — that the returned model's predictions differ
// from the (never trained) full model's predictions on at most an ε
// fraction of unseen examples:
//
//	Pr[ v(m_n) ≤ ε ] ≥ 1−δ,  v(m_n) = E_x 1{m_n(x) ≠ m_N(x)}
//
// Basic use mirrors Figure 1 of the paper — a traditional fit call plus an
// accuracy contract:
//
//	model, err := blinkml.Train(
//		blinkml.LogisticRegression(0.001),
//		data,
//		blinkml.Config{Epsilon: 0.05, Delta: 0.05}, // "95% accurate, 95% confident"
//	)
//
// Supported model classes: linear regression, logistic regression,
// max-entropy (softmax) classification, Poisson regression, and PPCA —
// i.e., MLE-based models (§2.2). The heavy lifting lives in internal/core
// (estimators, three statistics-computation methods), internal/models
// (model class specifications), internal/optimize (BFGS/L-BFGS) and
// internal/linalg (from-scratch dense linear algebra).
package blinkml

import (
	"context"
	"io"
	"time"

	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/modelio"
	"blinkml/internal/models"
	"blinkml/internal/tune"
)

// Re-exported data model: a Dataset holds rows (dense or sparse) and
// labels; see the dataset package docs for construction helpers.
type (
	// Dataset is an in-memory labeled dataset.
	Dataset = dataset.Dataset
	// Row is one feature vector (dense or sparse).
	Row = dataset.Row
	// DenseRow is a dense feature vector.
	DenseRow = dataset.DenseRow
	// SparseRow is a compressed sparse feature vector.
	SparseRow = dataset.SparseRow
	// Task tags label semantics.
	Task = dataset.Task
)

// Task values.
const (
	Regression           = dataset.Regression
	BinaryClassification = dataset.BinaryClassification
	MultiClassification  = dataset.MultiClassification
	Unsupervised         = dataset.Unsupervised
)

// NewSparseRow builds a sparse row; indices must be strictly increasing.
func NewSparseRow(dim int, idx []int32, val []float64) (*SparseRow, error) {
	return dataset.NewSparseRow(dim, idx, val)
}

// Config is the approximation contract plus tuning knobs; Epsilon and Delta
// form the (ε, δ) contract of §2.1 and everything else has sensible
// defaults. It is an alias of the core options type — see core.Options for
// per-field documentation.
type Config = core.Options

// Statistics-computation method selectors (§3.4).
const (
	ObservedFisher   = core.ObservedFisher
	InverseGradients = core.InverseGradients
	ClosedForm       = core.ClosedForm
)

// ModelSpec identifies a model class (a model class specification in the
// paper's terms).
type ModelSpec = models.Spec

// LinearRegression returns the L2-regularized Gaussian-MLE linear model
// ("Lin"; the paper's default reg is 0.001).
func LinearRegression(reg float64) ModelSpec { return models.LinearRegression{Reg: reg} }

// LogisticRegression returns the L2-regularized binary classifier ("LR").
func LogisticRegression(reg float64) ModelSpec { return models.LogisticRegression{Reg: reg} }

// MaxEntropy returns the K-class softmax classifier ("ME").
func MaxEntropy(classes int, reg float64) ModelSpec {
	return models.MaxEntropy{Classes: classes, Reg: reg}
}

// PoissonRegression returns the log-link Poisson GLM.
func PoissonRegression(reg float64) ModelSpec { return models.PoissonRegression{Reg: reg} }

// PPCA returns probabilistic PCA with q factors (the paper's default q is
// 10).
func PPCA(factors int) ModelSpec { return models.NewPPCA(factors) }

// Model is a trained (approximate or full) model.
type Model struct {
	// Spec is the model class this model belongs to.
	Spec ModelSpec
	// Theta is the flattened parameter vector.
	Theta []float64
	// SampleSize is the number of training rows actually used.
	SampleSize int
	// PoolSize is N, the rows the full model would have used.
	PoolSize int
	// EstimatedEpsilon bounds v(m_n) with probability ≥ 1−δ (0 for a full
	// model).
	EstimatedEpsilon float64
	// UsedInitialModel reports whether the initial n₀-row model already met
	// the contract (§2.3: at most two models are ever trained).
	UsedInitialModel bool
	// Diag breaks down where the time went (Figure 8a phases).
	Diag core.Diagnostics
}

// Predict returns the model's prediction for x: a class index for
// classifiers, a real value for regressors.
func (m *Model) Predict(x Row) float64 { return m.Spec.Predict(m.Theta, x) }

// Accuracy returns the fraction of rows in ds the model labels correctly
// (classification tasks).
func (m *Model) Accuracy(ds *Dataset) float64 { return models.Accuracy(m.Spec, m.Theta, ds) }

// GeneralizationError returns the test error (misclassification rate or
// normalized RMSE).
func (m *Model) GeneralizationError(ds *Dataset) float64 {
	return models.GeneralizationError(m.Spec, m.Theta, ds)
}

// Diff returns the empirical model difference v between m and other on a
// holdout set (the metric the (ε, δ) contract bounds).
func (m *Model) Diff(other *Model, holdout *Dataset) float64 {
	return models.Diff(m.Spec, m.Theta, other.Theta, holdout)
}

// EncodeModel writes m to w in the versioned blinkml-model JSON format:
// spec (including derived quantities such as PPCA's σ²), parameters, and
// contract metadata round-trip exactly, so a decoded model predicts
// identically. This is the format the serving layer's registry persists.
func EncodeModel(w io.Writer, m *Model) error {
	return modelio.Encode(w, &modelio.Model{
		Spec:             m.Spec,
		Theta:            m.Theta,
		SampleSize:       m.SampleSize,
		PoolSize:         m.PoolSize,
		EstimatedEpsilon: m.EstimatedEpsilon,
		UsedInitialModel: m.UsedInitialModel,
		Diag:             m.Diag,
	})
}

// DecodeModel reads a model written by EncodeModel.
func DecodeModel(r io.Reader) (*Model, error) {
	rec, err := modelio.Decode(r)
	if err != nil {
		return nil, err
	}
	return &Model{
		Spec:             rec.Spec,
		Theta:            rec.Theta,
		SampleSize:       rec.SampleSize,
		PoolSize:         rec.PoolSize,
		EstimatedEpsilon: rec.EstimatedEpsilon,
		UsedInitialModel: rec.UsedInitialModel,
		Diag:             rec.Diag,
	}, nil
}

// Train runs the BlinkML workflow: train an initial model on a small
// sample, estimate its accuracy against the unknown full model, and — only
// if needed — train one more model on an automatically sized sample that
// meets the (ε, δ) contract.
func Train(spec ModelSpec, ds *Dataset, cfg Config) (*Model, error) {
	return TrainContext(context.Background(), spec, ds, cfg)
}

// TrainContext is Train with cancellation: ctx is checked at every phase
// boundary and between optimizer iterations, so cancelling it stops the
// training promptly with ctx.Err() (wrapped). This is what makes killed
// server-side training jobs cheap.
func TrainContext(ctx context.Context, spec ModelSpec, ds *Dataset, cfg Config) (*Model, error) {
	res, err := core.TrainContext(ctx, spec, ds, cfg)
	if err != nil {
		return nil, err
	}
	return &Model{
		Spec:             spec,
		Theta:            res.Theta,
		SampleSize:       res.SampleSize,
		PoolSize:         res.PoolSize,
		EstimatedEpsilon: res.EstimatedEpsilon,
		UsedInitialModel: res.UsedInitialModel,
		Diag:             res.Diag,
	}, nil
}

// TrainFull trains on the entire training pool — the traditional path
// BlinkML is compared against. It uses the same train/holdout split as
// Train with the same Config, so Diff between the two models estimates the
// realized v.
func TrainFull(spec ModelSpec, ds *Dataset, cfg Config) (*Model, error) {
	cfg = cfg.WithDefaults()
	env := core.NewEnv(ds, cfg)
	res, err := env.TrainFull(spec, cfg.Optimizer)
	if err != nil {
		return nil, err
	}
	return &Model{
		Spec:       spec,
		Theta:      res.Theta,
		SampleSize: env.PoolLen(),
		PoolSize:   env.PoolLen(),
	}, nil
}

// Hyperparameter search (the paper's §5.7 scenario as a subsystem): a
// TuneSpace names candidate model specs — an explicit grid, seeded random
// draws over regularization and similar knobs, or both — and Tune evaluates
// them concurrently over one shared train/holdout/test split, optionally
// with successive-halving early pruning. See the tune package docs.
type (
	// TuneSpace is the candidate space (grid and/or random draws).
	TuneSpace = tune.Space
	// TuneRandomSpace draws seeded candidates from parameter ranges
	// (log-uniform over regularization, uniform over PPCA factors).
	TuneRandomSpace = tune.RandomSpace
	// TuneConfig sizes a search: per-candidate contract, worker pool, and
	// successive-halving knobs.
	TuneConfig = tune.Config
	// TuneEntry is one ranked leaderboard row.
	TuneEntry = tune.Entry
)

// TuneResult pairs the winning contract-trained model with the ranked
// leaderboard of every candidate evaluated.
type TuneResult struct {
	// Best is the winner — trained under the requested (ε, δ) contract, so
	// its ranking transfers to full training with high probability.
	Best *Model
	// Leaderboard ranks every candidate best-first (test metric, estimated
	// epsilon, sample size, wall time per candidate).
	Leaderboard []TuneEntry
	// Evaluated and Pruned count candidates entered and halving-pruned.
	Evaluated, Pruned int
	// PoolSize is N, the shared training pool all candidates drew from.
	PoolSize int
	// Elapsed is the whole search's wall-clock time.
	Elapsed time.Duration
}

// Tune searches space over ds: every candidate trains on the same shared
// split under cfg.Train's (ε, δ) contract, on a bounded worker pool, with
// optional successive-halving pruning (cfg.Halving). Cancelling ctx stops
// the search promptly — queued candidates are never started and running
// ones stop between optimizer iterations.
func Tune(ctx context.Context, space TuneSpace, ds *Dataset, cfg TuneConfig) (*TuneResult, error) {
	res, err := tune.Run(ctx, space, ds, cfg)
	if err != nil {
		return nil, err
	}
	return newTuneResult(res), nil
}

func newTuneResult(res *tune.Result) *TuneResult {
	return &TuneResult{
		Best: &Model{
			Spec:             res.Best.Spec,
			Theta:            res.Best.Theta,
			SampleSize:       res.Best.SampleSize,
			PoolSize:         res.Best.PoolSize,
			EstimatedEpsilon: res.Best.EstimatedEpsilon,
			UsedInitialModel: res.Best.UsedInitialModel,
			Diag:             res.Best.Diag,
		},
		Leaderboard: res.Entries,
		Evaluated:   res.Evaluated,
		Pruned:      res.Pruned,
		PoolSize:    res.PoolSize,
		Elapsed:     res.Elapsed,
	}
}

// Env exposes the shared train/holdout/test split for workflows that
// compare approximate and full models on identical data (as the paper's
// evaluation does).
type Env = core.Env

// NewEnv prepares a split environment; TrainApprox/TrainFull on the same
// Env are directly comparable.
func NewEnv(ds *Dataset, cfg Config) *Env { return core.NewEnv(ds, cfg) }

// DataSource is random access to rows that may live out of memory: an
// in-memory *Dataset is one, and so are the persistent dataset store's
// handles (internal/store). Training against a store-backed source
// materializes only the sampled rows plus the holdout — O(n) memory for an
// N-row dataset.
type DataSource = dataset.Source

// DataMeta describes a source's shape without touching its rows.
type DataMeta = dataset.Meta

// NewEnvFromSource prepares a split environment over any source. At the
// same seed it draws the same split and samples as NewEnv over the same
// rows, so store-backed and in-memory training agree exactly.
func NewEnvFromSource(src DataSource, cfg Config) (*Env, error) {
	return core.NewEnvFromSource(src, cfg)
}

// TrainSource is Train over any DataSource (see TrainContext for the
// cancellation behavior).
func TrainSource(ctx context.Context, spec ModelSpec, src DataSource, cfg Config) (*Model, error) {
	res, err := core.TrainSourceContext(ctx, spec, src, cfg)
	if err != nil {
		return nil, err
	}
	return &Model{
		Spec:             spec,
		Theta:            res.Theta,
		SampleSize:       res.SampleSize,
		PoolSize:         res.PoolSize,
		EstimatedEpsilon: res.EstimatedEpsilon,
		UsedInitialModel: res.UsedInitialModel,
		Diag:             res.Diag,
	}, nil
}

// TuneSource is Tune over any DataSource: the whole search — rung
// subsamples and contract trainings — materializes only the rows it
// touches.
func TuneSource(ctx context.Context, space TuneSpace, src DataSource, cfg TuneConfig) (*TuneResult, error) {
	res, err := tune.RunSource(ctx, space, src, cfg)
	if err != nil {
		return nil, err
	}
	return newTuneResult(res), nil
}

// SyntheticDataset generates one of the paper-shaped synthetic workloads:
// "gas", "power" (regression), "criteo", "higgs" (binary), "mnist", "yelp"
// (multiclass), or "counts" (Poisson). rows/dim of 0 use per-dataset
// defaults.
func SyntheticDataset(name string, rows, dim int, seed int64) (*Dataset, error) {
	return datagen.Generate(name, datagen.Config{Rows: rows, Dim: dim, Seed: seed})
}

// SyntheticSparseDataset is SyntheticDataset with an explicit stored-entry
// count per row for the sparse generators ("onehot"); nnz 0 uses the
// generator default, and dense generators ignore it.
func SyntheticSparseDataset(name string, rows, dim, nnz int, seed int64) (*Dataset, error) {
	return datagen.Generate(name, datagen.Config{Rows: rows, Dim: dim, NNZ: nnz, Seed: seed})
}

// ReadCSV loads a dense labeled dataset from CSV (label in labelCol;
// negative counts from the end). A non-numeric first line is treated as a
// header.
func ReadCSV(r io.Reader, labelCol int, task Task) (*Dataset, error) {
	return dataset.ReadCSV(r, labelCol, task)
}

// WriteCSV writes ds as CSV with the label in the last column.
func WriteCSV(w io.Writer, ds *Dataset) error { return dataset.WriteCSV(w, ds) }

// ReadLibSVM loads a sparse dataset in LibSVM/SVMlight format (dim 0
// infers the dimension from the data).
func ReadLibSVM(r io.Reader, dim int, task Task) (*Dataset, error) {
	return dataset.ReadLibSVM(r, dim, task)
}

// WriteLibSVM writes ds in LibSVM format.
func WriteLibSVM(w io.Writer, ds *Dataset) error { return dataset.WriteLibSVM(w, ds) }
